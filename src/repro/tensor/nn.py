"""Neural-network modules on the autograd engine (torch.nn in miniature).

The paper's Figure 8 shows BlindFL exposing a PyTorch-style API
(``FederatedModule`` wrapping ``Module``); this is the plain ``Module``
layer underneath — used directly for top models, non-federated baselines,
and attack models.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.tensor.tensor import Tensor

__all__ = [
    "Module",
    "Linear",
    "Embedding",
    "ReLU",
    "Sigmoid",
    "Tanh",
    "Identity",
    "Sequential",
    "Bias",
    "mlp",
]


class Module:
    """Base class: parameter discovery, train/eval mode, ``__call__``."""

    def __init__(self) -> None:
        self.training = True

    def forward(self, *args: object, **kwargs: object) -> Tensor:
        raise NotImplementedError

    def __call__(self, *args: object, **kwargs: object) -> Tensor:
        return self.forward(*args, **kwargs)

    def parameters(self) -> Iterator[Tensor]:
        """Yield every trainable tensor reachable from this module."""
        seen: set[int] = set()
        for value in self.__dict__.values():
            yield from _collect_params(value, seen)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def train(self) -> "Module":
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        self.training = training
        for value in self.__dict__.values():
            for module in _collect_modules(value):
                module._set_mode(training)

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())


def _collect_params(value: object, seen: set[int]) -> Iterator[Tensor]:
    if isinstance(value, Tensor) and value.requires_grad and id(value) not in seen:
        seen.add(id(value))
        yield value
    elif isinstance(value, Module):
        for sub in value.__dict__.values():
            yield from _collect_params(sub, seen)
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _collect_params(item, seen)


def _collect_modules(value: object) -> Iterator["Module"]:
    if isinstance(value, Module):
        yield value
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _collect_modules(item)


class Linear(Module):
    """Dense affine layer ``y = x @ W + b`` with He-style init."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        scale = np.sqrt(2.0 / in_features)
        self.weight = Tensor(
            rng.normal(0.0, scale, size=(in_features, out_features)),
            requires_grad=True,
        )
        self.bias = Tensor(np.zeros(out_features), requires_grad=True) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Embedding(Module):
    """Embedding table ``Q`` with lookup forward / scatter-add backward."""

    def __init__(
        self,
        num_embeddings: int,
        dim: int,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.table = Tensor(
            rng.normal(0.0, 0.1, size=(num_embeddings, dim)), requires_grad=True
        )

    def forward(self, indices: np.ndarray) -> Tensor:
        from repro.tensor.functional import embedding

        return embedding(self.table, indices)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Identity(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x


class Bias(Module):
    """A standalone bias term (the LR top model of Figure 8 is exactly this)."""

    def __init__(self, dim: int):
        super().__init__()
        self.bias = Tensor(np.zeros(dim), requires_grad=True)

    def forward(self, x: Tensor) -> Tensor:
        return x + self.bias


class Sequential(Module):
    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = list(layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, i: int) -> Module:
        return self.layers[i]


def mlp(
    dims: Sequence[int],
    rng: np.random.Generator | None = None,
    final_activation: bool = False,
) -> Sequential:
    """Build ``Linear->ReLU->...->Linear`` for the given layer widths."""
    if len(dims) < 2:
        raise ValueError("an MLP needs at least input and output widths")
    rng = rng or np.random.default_rng(0)
    layers: list[Module] = []
    for i in range(len(dims) - 1):
        layers.append(Linear(dims[i], dims[i + 1], rng=rng))
        if i < len(dims) - 2 or final_activation:
            layers.append(ReLU())
    return Sequential(*layers)
