"""Minimal CSR sparse matrices.

The paper's headline efficiency result (Table 5) hinges on *sparsified
computation*: BlindFL keeps features local, so a party can skip the zeros of
its own data — both in plaintext matmuls and in the homomorphic products of
the source layers.  This CSR type is the common currency: plaintext training
uses :meth:`matmul_dense` / :meth:`t_matmul_dense`, while
``repro.crypto.crypto_tensor`` consumes :meth:`iter_rows` so encrypted
products cost O(nnz).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["CSRMatrix"]


class CSRMatrix:
    """Compressed sparse row matrix over float64."""

    __slots__ = ("indptr", "indices", "values", "shape")

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        values: np.ndarray,
        shape: tuple[int, int],
    ):
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.values = np.asarray(values, dtype=np.float64)
        self.shape = (int(shape[0]), int(shape[1]))
        if self.indptr.shape[0] != self.shape[0] + 1:
            raise ValueError("indptr length must be n_rows + 1")
        if self.indices.shape != self.values.shape:
            raise ValueError("indices and values must be parallel arrays")
        if self.indices.size and self.indices.max() >= self.shape[1]:
            raise ValueError("column index out of range")

    # -- construction ---------------------------------------------------------

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRMatrix":
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim != 2:
            raise ValueError("from_dense needs a 2-D array")
        indptr = [0]
        indices: list[int] = []
        values: list[float] = []
        for row in dense:
            nz = np.nonzero(row)[0]
            indices.extend(nz.tolist())
            values.extend(row[nz].tolist())
            indptr.append(len(indices))
        return cls(np.array(indptr), np.array(indices), np.array(values), dense.shape)

    @classmethod
    def from_rows(
        cls, rows: list[tuple[np.ndarray, np.ndarray]], n_cols: int
    ) -> "CSRMatrix":
        """Build from a list of (column_indices, values) pairs."""
        indptr = [0]
        indices: list[int] = []
        values: list[float] = []
        for cols, vals in rows:
            indices.extend(np.asarray(cols, dtype=np.int64).tolist())
            values.extend(np.asarray(vals, dtype=np.float64).tolist())
            indptr.append(len(indices))
        return cls(
            np.array(indptr), np.array(indices), np.array(values), (len(rows), n_cols)
        )

    # -- inspection ------------------------------------------------------------

    @property
    def nnz(self) -> int:
        return int(self.values.shape[0])

    @property
    def density(self) -> float:
        total = self.shape[0] * self.shape[1]
        return self.nnz / total if total else 0.0

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=np.float64)
        for i, (cols, vals) in enumerate(self.iter_rows()):
            out[i, cols] = vals
        return out

    def iter_rows(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield (column_indices, values) per row — the sparse-op contract."""
        for i in range(self.shape[0]):
            lo, hi = self.indptr[i], self.indptr[i + 1]
            yield self.indices[lo:hi], self.values[lo:hi]

    def row(self, i: int) -> tuple[np.ndarray, np.ndarray]:
        lo, hi = self.indptr[i], self.indptr[i + 1]
        return self.indices[lo:hi], self.values[lo:hi]

    def take_rows(self, row_ids: np.ndarray) -> "CSRMatrix":
        """Row-slice (used by the batch loader)."""
        rows = [self.row(int(i)) for i in np.asarray(row_ids, dtype=np.int64)]
        return CSRMatrix.from_rows(rows, self.shape[1])

    def column_support(self) -> np.ndarray:
        """Sorted unique columns with at least one non-zero."""
        return np.unique(self.indices)

    # -- arithmetic --------------------------------------------------------------

    def matmul_dense(self, dense: np.ndarray) -> np.ndarray:
        """``self @ dense`` with cost O(nnz * k)."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.ndim == 1:
            dense = dense[:, None]
            squeeze = True
        else:
            squeeze = False
        if dense.shape[0] != self.shape[1]:
            raise ValueError(
                f"matmul shape mismatch: {self.shape} @ {dense.shape}"
            )
        out = np.zeros((self.shape[0], dense.shape[1]), dtype=np.float64)
        for i, (cols, vals) in enumerate(self.iter_rows()):
            if cols.size:
                out[i] = vals @ dense[cols]
        return out[:, 0] if squeeze else out

    def t_matmul_dense(self, dense: np.ndarray) -> np.ndarray:
        """``self.T @ dense`` (the X^T·grad of backprop), cost O(nnz * k)."""
        dense = np.asarray(dense, dtype=np.float64)
        if dense.shape[0] != self.shape[0]:
            raise ValueError(
                f"t_matmul shape mismatch: {self.shape}.T @ {dense.shape}"
            )
        out = np.zeros((self.shape[1], dense.shape[1]), dtype=np.float64)
        for i, (cols, vals) in enumerate(self.iter_rows()):
            if cols.size:
                out[cols] += vals[:, None] * dense[i]
        return out

    def __matmul__(self, other: object):
        # CryptoTensor declares __array_priority__/__rmatmul__; defer to it.
        from repro.crypto.crypto_tensor import CryptoTensor

        if isinstance(other, CryptoTensor):
            return other.__rmatmul__(self)
        return self.matmul_dense(np.asarray(other))

    def scale_rows(self, factors: np.ndarray) -> "CSRMatrix":
        """Multiply each row by a scalar (returns a new matrix)."""
        factors = np.asarray(factors, dtype=np.float64)
        if factors.shape != (self.shape[0],):
            raise ValueError("one factor per row required")
        values = self.values.copy()
        for i in range(self.shape[0]):
            lo, hi = self.indptr[i], self.indptr[i + 1]
            values[lo:hi] *= factors[i]
        return CSRMatrix(self.indptr, self.indices, values, self.shape)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CSRMatrix(shape={self.shape}, nnz={self.nnz})"
