"""First-order optimizers for plaintext parameters.

The paper's protocol (§7.1) trains with momentum SGD (momentum 0.9);
``SGD`` here optimises the *plaintext* tensors (top models, baselines),
while :class:`repro.core.optimizer.FederatedSGD` applies the same update
rule to the secretly shared pieces inside the source layers.  Adam is
included because the paper's future-work section calls out adaptive
optimizers; it works for every plaintext model (and documents why it cannot
be applied to shares — it is non-linear in the gradient).
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.tensor.tensor import Tensor

__all__ = ["SGD", "Adam"]


class SGD:
    """Mini-batch SGD with classical momentum and optional weight decay."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ):
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        for p, vel in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                vel *= self.momentum
                vel += grad
                update = vel
            else:
                update = grad
            p.data = p.data - self.lr * update


class Adam:
    """Adam (Kingma & Ba).  Plaintext-only; see the module docstring."""

    def __init__(
        self,
        params: Iterable[Tensor],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received no parameters")
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]
        self._t = 0

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        self._t += 1
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad * grad
            m_hat = m / (1 - self.beta1**self._t)
            v_hat = v / (1 - self.beta2**self._t)
            p.data = p.data - self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
