"""Functional ops that pair a plain-data input with trainable tensors.

These cover the two "common ML ops for input features" of §2.1:

* :func:`linear` / :func:`sparse_linear` — matrix multiplication ``Z = X W``
  where ``X`` is raw data (dense or CSR) and only ``W`` needs gradients;
* :func:`embedding` — ``E = lkup(Q, X)`` with the scatter-add backward
  ``grad_Q = lkup_bw(grad_E, X)``.

They are used by the non-federated baselines and the plaintext reference
implementations that the federated protocols are tested against.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.sparse import CSRMatrix
from repro.tensor.tensor import Tensor

__all__ = ["linear", "sparse_linear", "embedding", "logsumexp"]


def linear(x: np.ndarray, weight: Tensor) -> Tensor:
    """``x @ weight`` for a constant dense input ``x``."""
    x = np.asarray(x, dtype=np.float64)
    out = Tensor(
        x @ weight.data, requires_grad=weight.requires_grad, _prev=(weight,), op="linear"
    )

    def _backward() -> None:
        if weight.requires_grad:
            weight._accumulate(x.T @ out.grad)

    out._backward = _backward
    return out


def sparse_linear(x: CSRMatrix, weight: Tensor) -> Tensor:
    """``x @ weight`` for a CSR input; forward and backward cost O(nnz)."""
    out = Tensor(
        x.matmul_dense(weight.data),
        requires_grad=weight.requires_grad,
        _prev=(weight,),
        op="sparse_linear",
    )

    def _backward() -> None:
        if weight.requires_grad:
            weight._accumulate(x.t_matmul_dense(out.grad))

    out._backward = _backward
    return out


def embedding(table: Tensor, indices: np.ndarray) -> Tensor:
    """Embedding lookup ``E = lkup(Q, X)``.

    ``indices`` has shape (batch,) or (batch, fields); the output appends
    the embedding dimension.  Backward scatter-adds into the table
    (``lkup_bw``), exactly the op the Embed-MatMul layer federates.
    """
    indices = np.asarray(indices, dtype=np.int64)
    if indices.size and (indices.min() < 0 or indices.max() >= table.data.shape[0]):
        raise IndexError("embedding index out of range")
    out = Tensor(
        table.data[indices],
        requires_grad=table.requires_grad,
        _prev=(table,),
        op="embedding",
    )

    def _backward() -> None:
        if table.requires_grad:
            grad = np.zeros_like(table.data)
            np.add.at(grad, indices.ravel(), out.grad.reshape(-1, table.data.shape[1]))
            table._accumulate(grad)

    out._backward = _backward
    return out


def logsumexp(t: Tensor, axis: int = 1) -> Tensor:
    """Numerically-stable log-sum-exp along ``axis`` (keeps dims)."""
    shift = t.data.max(axis=axis, keepdims=True)
    shifted = t - Tensor(shift)
    return shifted.exp().sum(axis=axis, keepdims=True).log() + Tensor(shift)
