"""A small reverse-mode autograd engine over numpy.

The paper implements BlindFL "on top of PyTorch"; with no torch available we
provide the same contract: tensors that record their compute graph and
backpropagate exact gradients.  The top models of every federated model, all
baselines, and the attack models run on this engine.

Only what the reproduction needs is implemented — dense float64 tensors,
broadcasting binary ops, matmul, the usual activations and reductions — but
each op carries an exact vector-Jacobian product verified against finite
differences in the test-suite.
"""

from __future__ import annotations

from typing import Callable, Iterable

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True


class no_grad:
    """Context manager disabling graph construction (for eval loops)."""

    def __enter__(self) -> None:
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False

    def __exit__(self, *exc: object) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev


def is_grad_enabled() -> bool:
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce a gradient back to ``shape`` after numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum out prepended axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum along axes that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


class Tensor:
    """A numpy array plus gradient bookkeeping."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "op")

    def __init__(
        self,
        data: object,
        requires_grad: bool = False,
        _prev: tuple["Tensor", ...] = (),
        op: str = "",
    ):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = requires_grad and _GRAD_ENABLED
        self._backward: Callable[[], None] = lambda: None
        self._prev = _prev if _GRAD_ENABLED else ()
        self.op = op

    # -- plumbing ---------------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        return self.data

    def detach(self) -> "Tensor":
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            self.grad = grad.copy()
        else:
            self.grad = self.grad + grad

    @staticmethod
    def _coerce(other: object) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Reverse-mode sweep from this tensor."""
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("backward() without a gradient needs a scalar")
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=np.float64)
            if grad.shape != self.data.shape:
                raise ValueError(
                    f"gradient shape {grad.shape} does not match {self.data.shape}"
                )
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for child in node._prev:
                if id(child) not in visited:
                    stack.append((child, False))
        self._accumulate(grad)
        for node in reversed(topo):
            node._backward()

    # -- binary ops --------------------------------------------------------------

    def __add__(self, other: object) -> "Tensor":
        other = self._coerce(other)
        out = Tensor(
            self.data + other.data,
            requires_grad=self.requires_grad or other.requires_grad,
            _prev=(self, other),
            op="add",
        )

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(out.grad, other.data.shape))

        out._backward = _backward
        return out

    __radd__ = __add__

    def __mul__(self, other: object) -> "Tensor":
        other = self._coerce(other)
        out = Tensor(
            self.data * other.data,
            requires_grad=self.requires_grad or other.requires_grad,
            _prev=(self, other),
            op="mul",
        )

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(_unbroadcast(out.grad * other.data, self.data.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(out.grad * self.data, other.data.shape))

        out._backward = _backward
        return out

    __rmul__ = __mul__

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __sub__(self, other: object) -> "Tensor":
        return self + (-self._coerce(other))

    def __rsub__(self, other: object) -> "Tensor":
        return (-self) + other

    def __truediv__(self, other: object) -> "Tensor":
        other = self._coerce(other)
        return self * other.pow(-1.0)

    def __rtruediv__(self, other: object) -> "Tensor":
        return self._coerce(other) / self

    def __matmul__(self, other: object) -> "Tensor":
        other = self._coerce(other)
        out = Tensor(
            self.data @ other.data,
            requires_grad=self.requires_grad or other.requires_grad,
            _prev=(self, other),
            op="matmul",
        )

        def _backward() -> None:
            grad = out.grad
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data).reshape(self.data.shape))
                else:
                    self._accumulate(grad @ other.data.T)
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad).reshape(other.data.shape))
                else:
                    other._accumulate(self.data.T @ grad)

        out._backward = _backward
        return out

    def pow(self, exponent: float) -> "Tensor":
        out = Tensor(
            self.data**exponent,
            requires_grad=self.requires_grad,
            _prev=(self,),
            op="pow",
        )

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * exponent * self.data ** (exponent - 1))

        out._backward = _backward
        return out

    # -- unary ops ----------------------------------------------------------------

    def _unary(self, value: np.ndarray, local_grad: np.ndarray, op: str) -> "Tensor":
        out = Tensor(value, requires_grad=self.requires_grad, _prev=(self,), op=op)

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad * local_grad)

        out._backward = _backward
        return out

    def relu(self) -> "Tensor":
        return self._unary(
            np.maximum(self.data, 0.0), (self.data > 0).astype(np.float64), "relu"
        )

    def sigmoid(self) -> "Tensor":
        sig = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60, 60)))
        return self._unary(sig, sig * (1 - sig), "sigmoid")

    def tanh(self) -> "Tensor":
        t = np.tanh(self.data)
        return self._unary(t, 1 - t * t, "tanh")

    def exp(self) -> "Tensor":
        e = np.exp(self.data)
        return self._unary(e, e, "exp")

    def log(self) -> "Tensor":
        return self._unary(np.log(self.data), 1.0 / self.data, "log")

    # -- reductions / shape -----------------------------------------------------

    def sum(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        out = Tensor(
            self.data.sum(axis=axis, keepdims=keepdims),
            requires_grad=self.requires_grad,
            _prev=(self,),
            op="sum",
        )

        def _backward() -> None:
            if not self.requires_grad:
                return
            grad = out.grad
            if axis is not None and not keepdims:
                grad = np.expand_dims(grad, axis=axis)
            self._accumulate(np.broadcast_to(grad, self.data.shape).copy())

        out._backward = _backward
        return out

    def mean(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        count = self.data.size if axis is None else self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def reshape(self, *shape: int) -> "Tensor":
        out = Tensor(
            self.data.reshape(*shape),
            requires_grad=self.requires_grad,
            _prev=(self,),
            op="reshape",
        )

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad.reshape(self.data.shape))

        out._backward = _backward
        return out

    def transpose(self) -> "Tensor":
        out = Tensor(
            self.data.T, requires_grad=self.requires_grad, _prev=(self,), op="T"
        )

        def _backward() -> None:
            if self.requires_grad:
                self._accumulate(out.grad.T)

        out._backward = _backward
        return out

    def __getitem__(self, key: object) -> "Tensor":
        out = Tensor(
            self.data[key], requires_grad=self.requires_grad, _prev=(self,), op="index"
        )

        def _backward() -> None:
            if self.requires_grad:
                grad = np.zeros_like(self.data)
                np.add.at(grad, key, out.grad)
                self._accumulate(grad)

        out._backward = _backward
        return out

    @staticmethod
    def concat(tensors: Iterable["Tensor"], axis: int = 1) -> "Tensor":
        tensors = list(tensors)
        out = Tensor(
            np.concatenate([t.data for t in tensors], axis=axis),
            requires_grad=any(t.requires_grad for t in tensors),
            _prev=tuple(tensors),
            op="concat",
        )

        def _backward() -> None:
            offset = 0
            for t in tensors:
                width = t.data.shape[axis]
                slicer: list[slice] = [slice(None)] * out.grad.ndim
                slicer[axis] = slice(offset, offset + width)
                if t.requires_grad:
                    t._accumulate(out.grad[tuple(slicer)])
                offset += width

        out._backward = _backward
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Tensor(shape={self.data.shape}, requires_grad={self.requires_grad})"
