"""Loss functions (numerically stable, exact gradients).

The paper trains with logistic loss (LR/MLP/WDL/DLRM) and multinomial
cross-entropy (MLR); both are provided as fused ops whose backward passes
use the closed-form derivatives, avoiding intermediate overflow.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.tensor import Tensor

__all__ = ["bce_with_logits", "softmax_cross_entropy", "mse"]


def bce_with_logits(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Binary cross-entropy on raw logits (mean over the batch).

    Stable form: ``max(z, 0) - z*y + log(1 + exp(-|z|))``; backward is the
    textbook ``(sigmoid(z) - y) / batch``.
    """
    y = np.asarray(targets, dtype=np.float64).reshape(logits.data.shape)
    z = logits.data
    loss_val = np.maximum(z, 0) - z * y + np.log1p(np.exp(-np.abs(z)))
    out = Tensor(
        loss_val.mean(), requires_grad=logits.requires_grad, _prev=(logits,), op="bce"
    )

    def _backward() -> None:
        if logits.requires_grad:
            sig = 1.0 / (1.0 + np.exp(-np.clip(z, -60, 60)))
            logits._accumulate(out.grad * (sig - y) / y.size)

    out._backward = _backward
    return out


def softmax_cross_entropy(logits: Tensor, labels: np.ndarray) -> Tensor:
    """Multinomial cross-entropy on integer labels (mean over the batch)."""
    labels = np.asarray(labels, dtype=np.int64).ravel()
    z = logits.data
    if z.ndim != 2 or z.shape[0] != labels.size:
        raise ValueError("logits must be (batch, classes) matching labels")
    shifted = z - z.max(axis=1, keepdims=True)
    log_norm = np.log(np.exp(shifted).sum(axis=1, keepdims=True))
    log_probs = shifted - log_norm
    loss_val = -log_probs[np.arange(labels.size), labels].mean()
    out = Tensor(
        loss_val, requires_grad=logits.requires_grad, _prev=(logits,), op="ce"
    )

    def _backward() -> None:
        if logits.requires_grad:
            probs = np.exp(log_probs)
            probs[np.arange(labels.size), labels] -= 1.0
            logits._accumulate(out.grad * probs / labels.size)

    out._backward = _backward
    return out


def mse(pred: Tensor, targets: np.ndarray) -> Tensor:
    """Mean squared error."""
    y = np.asarray(targets, dtype=np.float64).reshape(pred.data.shape)
    diff = pred - Tensor(y)
    return (diff * diff).mean()
