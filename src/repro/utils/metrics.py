"""Evaluation metrics used throughout the paper's experiments.

The paper reports testing AUC for binary tasks and accuracy for multi-class
tasks (Figure 12), plus training loss curves.  We implement them on plain
numpy so the metrics are identical for federated and non-federated runs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["roc_auc", "accuracy", "binary_logloss", "softmax_logloss"]


def roc_auc(y_true: np.ndarray, y_score: np.ndarray) -> float:
    """Area under the ROC curve via the Mann-Whitney U statistic.

    ``y_true`` holds binary labels in {0, 1}; ``y_score`` holds arbitrary
    real-valued scores (larger means "more positive").  Ties receive the
    standard mid-rank treatment.
    """
    y_true = np.asarray(y_true).ravel()
    y_score = np.asarray(y_score, dtype=np.float64).ravel()
    if y_true.shape != y_score.shape:
        raise ValueError(
            f"shape mismatch: y_true {y_true.shape} vs y_score {y_score.shape}"
        )
    pos = y_true == 1
    n_pos = int(pos.sum())
    n_neg = y_true.size - n_pos
    if n_pos == 0 or n_neg == 0:
        raise ValueError("roc_auc needs at least one positive and one negative")
    order = np.argsort(y_score, kind="mergesort")
    ranks = np.empty(y_true.size, dtype=np.float64)
    ranks[order] = np.arange(1, y_true.size + 1)
    # Mid-ranks for ties.
    sorted_scores = y_score[order]
    i = 0
    while i < y_true.size:
        j = i
        while j + 1 < y_true.size and sorted_scores[j + 1] == sorted_scores[i]:
            j += 1
        if j > i:
            ranks[order[i : j + 1]] = 0.5 * (i + 1 + j + 1)
        i = j + 1
    rank_sum = ranks[pos].sum()
    u_stat = rank_sum - n_pos * (n_pos + 1) / 2.0
    return float(u_stat / (n_pos * n_neg))


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exact label matches."""
    y_true = np.asarray(y_true).ravel()
    y_pred = np.asarray(y_pred).ravel()
    if y_true.shape != y_pred.shape:
        raise ValueError(
            f"shape mismatch: y_true {y_true.shape} vs y_pred {y_pred.shape}"
        )
    if y_true.size == 0:
        raise ValueError("accuracy of an empty array is undefined")
    return float(np.mean(y_true == y_pred))


def binary_logloss(y_true: np.ndarray, y_prob: np.ndarray, eps: float = 1e-12) -> float:
    """Mean negative log-likelihood of binary labels under probabilities."""
    y_true = np.asarray(y_true, dtype=np.float64).ravel()
    y_prob = np.asarray(y_prob, dtype=np.float64).ravel()
    if y_true.shape != y_prob.shape:
        raise ValueError(
            f"shape mismatch: y_true {y_true.shape} vs y_prob {y_prob.shape}"
        )
    if y_true.size == 0:
        raise ValueError("logloss of an empty array is undefined")
    y_prob = np.clip(y_prob, eps, 1.0 - eps)
    return float(-np.mean(y_true * np.log(y_prob) + (1 - y_true) * np.log(1 - y_prob)))


def softmax_logloss(y_true: np.ndarray, logits: np.ndarray, eps: float = 1e-12) -> float:
    """Mean cross-entropy of integer labels under a logits matrix."""
    y_true = np.asarray(y_true, dtype=np.int64).ravel()
    logits = np.asarray(logits, dtype=np.float64)
    if logits.ndim != 2 or logits.shape[0] != y_true.size:
        raise ValueError("logits must be (n_samples, n_classes)")
    shifted = logits - logits.max(axis=1, keepdims=True)
    log_probs = shifted - np.log(np.exp(shifted).sum(axis=1, keepdims=True) + eps)
    return float(-np.mean(log_probs[np.arange(y_true.size), y_true]))
