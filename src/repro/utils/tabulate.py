"""Plain-text table rendering for the benchmark harness.

The benchmark files print the same rows the paper's tables report; this
module renders them as aligned monospace tables without any third-party
dependency.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError("row length does not match header length")
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        if cell != 0 and (abs(cell) < 1e-3 or abs(cell) >= 1e6):
            return f"{cell:.3e}"
        return f"{cell:.4f}"
    return str(cell)
