"""Small wall-clock timer used by the benchmarks and the span tracer."""

from __future__ import annotations

import time

__all__ = ["Timer"]


class Timer:
    """Accumulating stopwatch.

    Usage::

        timer = Timer()
        with timer:
            expensive_call()
        print(timer.elapsed)

    Multiple ``with`` blocks accumulate into ``elapsed``.  Re-entering an
    already-running timer is nesting-safe: the wall interval is counted
    once, from the outermost entry to the matching outermost exit (a
    recursive instrumented call must not double-count or clobber the
    start mark).  Exiting a timer that was never entered raises.
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start: float | None = None
        self._depth = 0

    @property
    def running(self) -> bool:
        """True while at least one ``with`` block is open."""
        return self._depth > 0

    def __enter__(self) -> "Timer":
        if self._depth == 0:
            self._start = time.perf_counter()
        self._depth += 1
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._depth == 0 or self._start is None:
            raise RuntimeError("Timer exited without entering")
        self._depth -= 1
        if self._depth == 0:
            self.elapsed += time.perf_counter() - self._start
            self._start = None

    def reset(self) -> None:
        self.elapsed = 0.0
        self._start = None
        self._depth = 0
