"""Small wall-clock timer used by the efficiency benchmarks."""

from __future__ import annotations

import time

__all__ = ["Timer"]


class Timer:
    """Accumulating stopwatch.

    Usage::

        timer = Timer()
        with timer:
            expensive_call()
        print(timer.elapsed)

    Multiple ``with`` blocks accumulate into ``elapsed``.
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start is None:
            raise RuntimeError("Timer exited without entering")
        self.elapsed += time.perf_counter() - self._start
        self._start = None

    def reset(self) -> None:
        self.elapsed = 0.0
        self._start = None
