"""Shared utilities: metrics, RNG management, timers, table printing."""

from repro.utils.metrics import accuracy, binary_logloss, roc_auc, softmax_logloss
from repro.utils.rng import new_rng, spawn_rngs
from repro.utils.tabulate import format_table
from repro.utils.timer import Timer

__all__ = [
    "accuracy",
    "binary_logloss",
    "roc_auc",
    "softmax_logloss",
    "new_rng",
    "spawn_rngs",
    "format_table",
    "Timer",
]
