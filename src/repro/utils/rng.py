"""Deterministic random-number management.

Every stochastic component (key generation, secret-sharing masks, dataset
synthesis, model init, batch shuffling) takes an explicit
``numpy.random.Generator`` so experiments are reproducible run-to-run.
"""

from __future__ import annotations

import numpy as np

__all__ = ["new_rng", "spawn_rngs"]


def new_rng(seed: int | None = 0) -> np.random.Generator:
    """Create a PCG64 generator from an integer seed (``None`` = OS entropy)."""
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from one seed.

    Uses ``SeedSequence.spawn`` so children are statistically independent,
    which matters when e.g. both parties and the data generator each need
    their own stream.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]
