"""Split learning — the insecure paradigm BlindFL replaces (§2.3, §3).

Each party owns a *local bottom model in plaintext* (exactly what Table 2/3
forbids) and exchanges forward activations / backward derivatives in the
clear.  This module exists to reproduce the paper's leakage experiments:

* Figure 9 — Party A predicts labels from ``X_A W_A`` because it owns
  ``W_A`` (and the ModelSS-without-GradSS ablation: sharing the weights at
  init does not help if A applies plaintext gradients to its piece);
* Figure 10 — Party A predicts labels from the backward derivatives
  ``grad_E_A`` it receives, via the cosine-direction attack.

All cross-party messages are tagged ``MessageKind.PLAINTEXT`` so transcript
assertions can distinguish this paradigm from BlindFL structurally.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.comm.channel import Channel
from repro.comm.message import MessageKind
from repro.core.trainer import TrainConfig
from repro.data.partition import VerticalDataset
from repro.tensor.functional import embedding
from repro.tensor.losses import bce_with_logits, softmax_cross_entropy
from repro.tensor.nn import ReLU, Sequential, mlp
from repro.tensor.optim import SGD
from repro.tensor.sparse import CSRMatrix
from repro.tensor.tensor import Tensor

__all__ = ["SplitLinear", "SplitWDL", "SplitRecord", "train_split_linear", "train_split_wdl"]


@dataclass
class SplitRecord:
    """What Party A could observe (and therefore attack) during training.

    ``za_per_epoch`` — A's own bottom-model outputs ``X_A W_A`` on the test
    set after each epoch (Figure 9's attack input).
    ``grad_e_a`` — the plaintext derivatives A received, with the batch
    labels for scoring the attack (Figure 10's attack input).
    """

    za_per_epoch: list[np.ndarray] = field(default_factory=list)
    grad_e_a: list[np.ndarray] = field(default_factory=list)
    grad_labels: list[np.ndarray] = field(default_factory=list)


def _matmul(x: np.ndarray | CSRMatrix, w: np.ndarray) -> np.ndarray:
    if isinstance(x, CSRMatrix):
        return x.matmul_dense(w)
    return np.asarray(x, dtype=np.float64) @ w


def _t_matmul(x: np.ndarray | CSRMatrix, g: np.ndarray) -> np.ndarray:
    if isinstance(x, CSRMatrix):
        return x.t_matmul_dense(g)
    return np.asarray(x, dtype=np.float64).T @ g


class SplitLinear:
    """Split-learning LR/MLR: plaintext bottom models W_A (at A), W_B (at B).

    ``model_ss=True`` reproduces the Figure 9 ablation: the weights are
    secretly shared at initialisation (``W_A = U_A + V_A``) but Party A
    receives the plaintext gradient and updates ``U_A`` directly — the
    paper shows this still leaks because ``V_A`` is a constant offset.
    ``v_scale`` amplifies ``V_A`` (the "||V_A|| = 5 ||U_A||" curves).
    """

    def __init__(
        self,
        in_a: int,
        in_b: int,
        out_dim: int = 1,
        model_ss: bool = False,
        v_scale: float = 1.0,
        init_scale: float = 0.05,
        seed: int = 0,
        channel: Channel | None = None,
    ):
        rng = np.random.default_rng(seed)
        self.out_dim = out_dim
        self.model_ss = model_ss
        self.u_a = rng.normal(0.0, init_scale, size=(in_a, out_dim))
        if model_ss:
            self.v_a = rng.normal(0.0, init_scale * v_scale, size=(in_a, out_dim))
        else:
            self.v_a = np.zeros((in_a, out_dim))
        self.w_b = rng.normal(0.0, init_scale, size=(in_b, out_dim))
        self.bias = np.zeros(out_dim)
        self.channel = channel
        self.vel_u_a = np.zeros_like(self.u_a)
        self.vel_w_b = np.zeros_like(self.w_b)
        self.vel_bias = np.zeros_like(self.bias)

    @property
    def w_a(self) -> np.ndarray:
        """The effective bottom model of Party A."""
        return self.u_a + self.v_a

    def bottom_a(self, x_a: np.ndarray | CSRMatrix) -> np.ndarray:
        """What Party A can compute alone — the Figure 9 attack statistic
        is ``X_A U_A`` (all A holds when model_ss) or ``X_A W_A``."""
        return _matmul(x_a, self.u_a)

    def forward(
        self, x_a: np.ndarray | CSRMatrix, x_b: np.ndarray | CSRMatrix
    ) -> np.ndarray:
        z_a = _matmul(x_a, self.w_a)
        if self.channel is not None:
            # The defining (and fatal) transmission of split learning.
            self.channel.send("A", "B", "split.Z_A", z_a, MessageKind.PLAINTEXT)
            z_a = self.channel.recv("B", "split.Z_A")
        return z_a + _matmul(x_b, self.w_b) + self.bias

    def backward_step(
        self,
        x_a: np.ndarray | CSRMatrix,
        x_b: np.ndarray | CSRMatrix,
        grad_z: np.ndarray,
        lr: float,
        momentum: float,
    ) -> None:
        if self.channel is not None:
            self.channel.send("B", "A", "split.gZ", grad_z, MessageKind.PLAINTEXT)
            grad_z = self.channel.recv("A", "split.gZ")
        grad_wa = _t_matmul(x_a, grad_z)
        grad_wb = _t_matmul(x_b, grad_z)
        self.vel_u_a = momentum * self.vel_u_a + grad_wa
        self.u_a -= lr * self.vel_u_a  # A updates its piece in plaintext
        self.vel_w_b = momentum * self.vel_w_b + grad_wb
        self.w_b -= lr * self.vel_w_b
        self.vel_bias = momentum * self.vel_bias + grad_z.sum(axis=0)
        self.bias -= lr * self.vel_bias


def train_split_linear(
    model: SplitLinear,
    train_data: VerticalDataset,
    test_data: VerticalDataset,
    config: TrainConfig,
) -> SplitRecord:
    """Train split-learning LR/MLR, recording Party A's view per epoch."""
    record = SplitRecord()
    rng = np.random.default_rng(config.seed)
    n = train_data.n
    test_xa = test_data.party("A").numeric_block()
    for _ in range(config.epochs):
        order = rng.permutation(n)
        for start in range(0, n - config.batch_size + 1, config.batch_size):
            idx = order[start : start + config.batch_size]
            batch = train_data.take_rows(idx)
            x_a = batch.party("A").numeric_block()
            x_b = batch.party("B").numeric_block()
            logits = model.forward(x_a, x_b)
            grad_z = _loss_grad(logits, batch.y, train_data.n_classes)
            model.backward_step(x_a, x_b, grad_z, config.lr, config.momentum)
        record.za_per_epoch.append(model.bottom_a(test_xa))
    return record


def _loss_grad(logits: np.ndarray, y: np.ndarray, n_classes: int) -> np.ndarray:
    """Closed-form grad of mean BCE / CE w.r.t. logits."""
    if n_classes == 2:
        probs = 1.0 / (1.0 + np.exp(-np.clip(logits, -60, 60)))
        return (probs - y.reshape(probs.shape)) / y.shape[0]
    shifted = logits - logits.max(axis=1, keepdims=True)
    probs = np.exp(shifted)
    probs /= probs.sum(axis=1, keepdims=True)
    probs[np.arange(y.shape[0]), y.astype(int)] -= 1.0
    return probs / y.shape[0]


class SplitWDL:
    """Split-learning WDL: Party A's bottom = embedding + hidden layers.

    Party A owns embedding table ``Q_A`` (plaintext) over its categorical
    fields; the paper's Figure 10 varies the number of hidden layers
    *after* the table and shows the cosine attack works at any depth.
    Party A receives ``grad_E_A`` in the clear every iteration.
    """

    def __init__(
        self,
        vocab_a: list[int],
        vocab_b: list[int],
        emb_dim: int = 8,
        n_hidden: int = 2,
        hidden_dim: int = 16,
        seed: int = 0,
    ):
        rng = np.random.default_rng(seed)
        self.emb_dim = emb_dim
        self.off_a = np.cumsum([0, *vocab_a[:-1]]).astype(np.int64)
        self.off_b = np.cumsum([0, *vocab_b[:-1]]).astype(np.int64)
        self.table_a = Tensor(
            rng.normal(0.0, 0.05, size=(sum(vocab_a), emb_dim)), requires_grad=True
        )
        self.table_b = Tensor(
            rng.normal(0.0, 0.05, size=(sum(vocab_b), emb_dim)), requires_grad=True
        )
        in_a = len(vocab_a) * emb_dim
        in_b = len(vocab_b) * emb_dim
        dims_a = [in_a] + [hidden_dim] * (n_hidden - 1) + [hidden_dim]
        self.bottom_a_net = mlp(dims_a, rng=rng)
        self.top = Sequential(
            ReLU(), mlp([hidden_dim + in_b, hidden_dim, 1], rng=rng)
        )
        self._params = [self.table_a, self.table_b]

    def parameters(self) -> list[Tensor]:
        params = [self.table_a, self.table_b]
        params.extend(self.bottom_a_net.parameters())
        params.extend(self.top.parameters())
        return params

    def forward(
        self, x_cat_a: np.ndarray, x_cat_b: np.ndarray
    ) -> tuple[Tensor, Tensor]:
        """Returns (logits, E_A) — E_A kept so its grad can be recorded."""
        batch = x_cat_a.shape[0]
        flat_a = (x_cat_a + self.off_a[None, :]).ravel()
        flat_b = (x_cat_b + self.off_b[None, :]).ravel()
        e_a = embedding(self.table_a, flat_a).reshape(batch, -1)
        z_a = self.bottom_a_net(e_a)
        e_b = embedding(self.table_b, flat_b).reshape(batch, -1)
        logits = self.top(Tensor.concat([z_a, e_b], axis=1))
        return logits, e_a


def train_split_wdl(
    model: SplitWDL,
    train_data: VerticalDataset,
    config: TrainConfig,
) -> SplitRecord:
    """Train split WDL, recording the ``grad_E_A`` Party A observes."""
    record = SplitRecord()
    optimizer = SGD(model.parameters(), lr=config.lr, momentum=config.momentum)
    rng = np.random.default_rng(config.seed)
    n = train_data.n
    criterion = (
        bce_with_logits if train_data.n_classes == 2 else softmax_cross_entropy
    )
    for _ in range(config.epochs):
        order = rng.permutation(n)
        for start in range(0, n - config.batch_size + 1, config.batch_size):
            idx = order[start : start + config.batch_size]
            batch = train_data.take_rows(idx)
            logits, e_a = model.forward(batch.party("A").x_cat, batch.party("B").x_cat)
            optimizer.zero_grad()
            loss = criterion(logits, batch.y)
            loss.backward()
            # This is the value split learning hands Party A in the clear.
            record.grad_e_a.append(e_a.grad.copy())
            record.grad_labels.append(batch.y.copy())
            optimizer.step()
    return record
