"""Non-federated baselines: the two yardsticks of Figure 12.

* **NonFed-collocated** — train on both parties' features as if they were
  one table.  The lossless property says BlindFL must match this.
* **NonFed-Party B** — train on Party B's features only.  BlindFL must
  beat this (otherwise federation adds nothing).

The models mirror the federated ones exactly (same architecture, init
scale, optimizer), differing only in where the data lives.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.trainer import History, TrainConfig
from repro.data.partition import PartyData, VerticalDataset
from repro.data.synthetic import Dataset
from repro.tensor.functional import embedding, linear, sparse_linear
from repro.tensor.losses import bce_with_logits, softmax_cross_entropy
from repro.tensor.nn import Module, ReLU, Sequential, mlp
from repro.tensor.optim import SGD
from repro.tensor.sparse import CSRMatrix
from repro.tensor.tensor import Tensor, no_grad
from repro.utils.metrics import accuracy, roc_auc

__all__ = [
    "PlainInputs",
    "PlainLR",
    "PlainMLR",
    "PlainMLP",
    "PlainWDL",
    "PlainDLRM",
    "party_b_view",
    "collocated_view",
    "train_plain",
    "evaluate_plain",
    "plain_model_like",
]


@dataclass
class PlainInputs:
    """A collocated feature view: one numeric block + one categorical block."""

    numeric: np.ndarray | CSRMatrix | None
    x_cat: np.ndarray | None
    vocab_sizes: list[int]
    y: np.ndarray
    n_classes: int

    @property
    def n(self) -> int:
        return int(self.y.shape[0])

    @property
    def numeric_dim(self) -> int:
        return 0 if self.numeric is None else self.numeric.shape[1]

    def take_rows(self, idx: np.ndarray) -> "PlainInputs":
        numeric = self.numeric
        if isinstance(numeric, CSRMatrix):
            numeric = numeric.take_rows(idx)
        elif numeric is not None:
            numeric = numeric[idx]
        return PlainInputs(
            numeric=numeric,
            x_cat=None if self.x_cat is None else self.x_cat[idx],
            vocab_sizes=list(self.vocab_sizes),
            y=self.y[idx],
            n_classes=self.n_classes,
        )


def collocated_view(dataset: Dataset) -> PlainInputs:
    """All features in one place (what a non-VFL deployment would see)."""
    numeric = dataset.x_dense if dataset.x_dense is not None else dataset.x_sparse
    return PlainInputs(
        numeric=numeric,
        x_cat=dataset.x_cat,
        vocab_sizes=list(dataset.vocab_sizes),
        y=dataset.y,
        n_classes=dataset.n_classes,
    )


def party_b_view(vertical: VerticalDataset) -> PlainInputs:
    """Party B's own features only (it also holds the labels)."""
    pd: PartyData = vertical.party("B")
    numeric = pd.x_dense if pd.x_dense is not None else pd.x_sparse
    return PlainInputs(
        numeric=numeric,
        x_cat=pd.x_cat,
        vocab_sizes=list(pd.vocab_sizes),
        y=vertical.y,
        n_classes=vertical.n_classes,
    )


def _numeric_linear(x: np.ndarray | CSRMatrix, weight: Tensor) -> Tensor:
    if isinstance(x, CSRMatrix):
        return sparse_linear(x, weight)
    return linear(np.asarray(x), weight)


class PlainLR(Module):
    """Plaintext logistic regression (matching FederatedLR's init scale)."""

    def __init__(self, dim: int, out_dim: int = 1, init_scale: float = 0.05, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.weight = Tensor(
            rng.normal(0.0, init_scale, size=(dim, out_dim)), requires_grad=True
        )
        self.bias = Tensor(np.zeros(out_dim), requires_grad=True)

    def forward(self, inputs: PlainInputs) -> Tensor:
        return _numeric_linear(inputs.numeric, self.weight) + self.bias


class PlainMLR(PlainLR):
    """Multinomial LR — PlainLR with out_dim = n_classes."""

    def __init__(self, dim: int, n_classes: int, seed: int = 0):
        super().__init__(dim, out_dim=n_classes, seed=seed)


class PlainMLP(Module):
    """Plaintext MLP with a sparse-aware first layer."""

    def __init__(self, dim: int, hidden: list[int], n_out: int, seed: int = 0):
        super().__init__()
        rng = np.random.default_rng(seed)
        self.first = Tensor(
            rng.normal(0.0, np.sqrt(2.0 / dim), size=(dim, hidden[0])),
            requires_grad=True,
        )
        self.rest = Sequential(ReLU(), mlp([*hidden, n_out], rng=rng))

    def forward(self, inputs: PlainInputs) -> Tensor:
        return self.rest(_numeric_linear(inputs.numeric, self.first))


class PlainWDL(Module):
    """Plaintext Wide & Deep matching FederatedWDL's architecture."""

    def __init__(
        self,
        sparse_dim: int,
        vocab_sizes: list[int],
        emb_dim: int = 8,
        deep_hidden: list[int] | None = None,
        seed: int = 0,
    ):
        super().__init__()
        deep_hidden = deep_hidden or [16]
        rng = np.random.default_rng(seed)
        self.wide = Tensor(
            rng.normal(0.0, 0.05, size=(sparse_dim, 1)), requires_grad=True
        )
        total_vocab = sum(vocab_sizes)
        self.offsets = np.cumsum([0, *vocab_sizes[:-1]]).astype(np.int64)
        self.table = Tensor(
            rng.normal(0.0, 0.05, size=(total_vocab, emb_dim)), requires_grad=True
        )
        self.deep_w = Tensor(
            rng.normal(0.0, 0.05, size=(len(vocab_sizes) * emb_dim, deep_hidden[0])),
            requires_grad=True,
        )
        self.deep_top = Sequential(ReLU(), mlp([*deep_hidden, 1], rng=rng))
        self.bias = Tensor(np.zeros(1), requires_grad=True)

    def forward(self, inputs: PlainInputs) -> Tensor:
        wide_z = _numeric_linear(inputs.numeric, self.wide)
        flat = (inputs.x_cat + self.offsets[None, :]).ravel()
        batch = inputs.x_cat.shape[0]
        e = embedding(self.table, flat).reshape(batch, -1)
        deep_z = e @ self.deep_w
        return wide_z + self.deep_top(deep_z) + self.bias


class PlainDLRM(Module):
    """Plaintext DLRM-style model matching FederatedDLRM."""

    def __init__(
        self,
        dense_dim: int,
        vocab_sizes: list[int],
        emb_dim: int = 8,
        arm_dim: int = 16,
        top_hidden: list[int] | None = None,
        seed: int = 0,
    ):
        super().__init__()
        top_hidden = top_hidden or [16]
        rng = np.random.default_rng(seed)
        self.dense_w = Tensor(
            rng.normal(0.0, 0.05, size=(dense_dim, arm_dim)), requires_grad=True
        )
        total_vocab = sum(vocab_sizes)
        self.offsets = np.cumsum([0, *vocab_sizes[:-1]]).astype(np.int64)
        self.table = Tensor(
            rng.normal(0.0, 0.05, size=(total_vocab, emb_dim)), requires_grad=True
        )
        self.emb_w = Tensor(
            rng.normal(0.0, 0.05, size=(len(vocab_sizes) * emb_dim, arm_dim)),
            requires_grad=True,
        )
        self.top = Sequential(ReLU(), mlp([3 * arm_dim, *top_hidden, 1], rng=rng))

    def forward(self, inputs: PlainInputs) -> Tensor:
        dense_z = _numeric_linear(inputs.numeric, self.dense_w)
        flat = (inputs.x_cat + self.offsets[None, :]).ravel()
        batch = inputs.x_cat.shape[0]
        e = embedding(self.table, flat).reshape(batch, -1)
        emb_z = e @ self.emb_w
        interaction = dense_z * emb_z
        return self.top(Tensor.concat([dense_z, emb_z, interaction], axis=1))


def plain_model_like(model_name: str, inputs: PlainInputs, seed: int = 0) -> Module:
    """Build the plaintext twin of a federated model for these inputs."""
    if model_name == "lr":
        return PlainLR(inputs.numeric_dim, seed=seed)
    if model_name == "mlr":
        return PlainMLR(inputs.numeric_dim, inputs.n_classes, seed=seed)
    if model_name == "mlp":
        return PlainMLP(inputs.numeric_dim, [32, 16], inputs.n_classes, seed=seed)
    if model_name == "wdl":
        return PlainWDL(inputs.numeric_dim, inputs.vocab_sizes, seed=seed)
    if model_name == "dlrm":
        return PlainDLRM(inputs.numeric_dim, inputs.vocab_sizes, seed=seed)
    raise ValueError(f"unknown model {model_name!r}")


def train_plain(
    model: Module,
    train_inputs: PlainInputs,
    config: TrainConfig,
    test_inputs: PlainInputs | None = None,
) -> History:
    """The exact training loop of ``train_federated``, minus federation."""
    optimizer = SGD(list(model.parameters()), lr=config.lr, momentum=config.momentum)
    criterion = (
        bce_with_logits if train_inputs.n_classes == 2 else softmax_cross_entropy
    )
    rng = np.random.default_rng(config.seed)
    metric_name = "auc" if train_inputs.n_classes == 2 else "accuracy"
    history = History(metric_name=metric_name)
    n = train_inputs.n
    for _ in range(config.epochs):
        order = rng.permutation(n)
        for start in range(0, n - config.batch_size + 1, config.batch_size):
            batch = train_inputs.take_rows(order[start : start + config.batch_size])
            output = model(batch)
            optimizer.zero_grad()
            loss = criterion(output, batch.y)
            loss.backward()
            optimizer.step()
            history.losses.append(loss.item())
        if test_inputs is not None:
            history.epoch_metrics.append(
                evaluate_plain(model, test_inputs)[metric_name]
            )
    return history


def evaluate_plain(model: Module, inputs: PlainInputs) -> dict[str, float]:
    with no_grad():
        scores = model(inputs).numpy()
    if inputs.n_classes == 2:
        return {"auc": roc_auc(inputs.y, scores.ravel())}
    return {"accuracy": accuracy(inputs.y, scores.argmax(axis=1))}
