"""SecureML baseline — the MPC/data-outsourcing comparator of Table 5.

SecureML (Mohassel & Zhang, S&P'17) secret-shares *features and weights*
onto two non-colluding servers over Z_2^64 and runs every matrix product
through Beaver triples.  Two consequences the paper's Table 5 measures:

* **densification** — outsourced features must not reveal which entries
  are zero, so sparse datasets become fully dense (the ``outsource`` step
  here enforces that, with a memory guard that reproduces the paper's
  "OOM" cells);
* **per-iteration triple cost** — the crypto offline phase is
  Theta(n*m*k) homomorphic work per batch; the client-aided variant gets
  triples for free from a third party.

Only the matrix-multiplication path is modelled, mirroring the paper:
"we only record the time cost of matrix multiplication for a fair
comparison".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.crypto.beaver import (
    ClientAidedDealer,
    PaillierTripleGenerator,
    beaver_matmul,
    decode_ring,
    encode_ring,
    reconstruct_ring,
    share_ring,
)
from repro.tensor.sparse import CSRMatrix
from repro.utils.timer import Timer

__all__ = ["SecureMLMatMul", "SecureMLCostModel", "outsource"]

DEFAULT_DENSE_LIMIT_BYTES = 512 * 1024 * 1024


def outsource(
    x: np.ndarray | CSRMatrix,
    rng: np.random.Generator,
    dense_limit_bytes: int = DEFAULT_DENSE_LIMIT_BYTES,
) -> tuple[np.ndarray, np.ndarray]:
    """Share features onto the two servers — densifying sparse data.

    Raises ``MemoryError`` when the densified table would exceed the
    limit, reproducing Table 5's OOM entries for avazu-app/industry.
    """
    if isinstance(x, CSRMatrix):
        dense_bytes = x.shape[0] * x.shape[1] * 8 * 2  # two uint64 shares
        if dense_bytes > dense_limit_bytes:
            raise MemoryError(
                f"outsourcing would densify {x.shape} to {dense_bytes / 2**20:.0f}"
                f" MiB of shares (limit {dense_limit_bytes / 2**20:.0f} MiB)"
            )
        x = x.to_dense()
    return share_ring(encode_ring(np.asarray(x, dtype=np.float64)), rng)


class SecureMLMatMul:
    """The secure matmul kernel: forward ``X @ W`` and backward ``X^T @ g``.

    ``triple_source`` is "client" (free triples from a dealer) or "crypto"
    (the servers generate triples with Paillier — slow by design).
    """

    def __init__(
        self,
        rng: np.random.Generator,
        triple_source: str = "client",
        key_bits: int = 192,
        seed: int = 0,
    ):
        if triple_source not in ("client", "crypto"):
            raise ValueError("triple_source must be 'client' or 'crypto'")
        self.rng = rng
        self.triple_source = triple_source
        self.offline_timer = Timer()
        self.online_timer = Timer()
        if triple_source == "client":
            self._dealer = ClientAidedDealer(rng)
        else:
            from repro.crypto.paillier import generate_paillier_keypair

            pk0, sk0 = generate_paillier_keypair(key_bits, seed=seed * 2 + 1)
            pk1, sk1 = generate_paillier_keypair(key_bits, seed=seed * 2 + 2)
            self._dealer = PaillierTripleGenerator(rng, pk0, sk0, pk1, sk1)

    def matmul(
        self,
        x_shares: tuple[np.ndarray, np.ndarray],
        w_shares: tuple[np.ndarray, np.ndarray],
    ) -> tuple[np.ndarray, np.ndarray]:
        """One secure product, timing offline (triple) and online phases."""
        n, m = x_shares[0].shape
        k = w_shares[0].shape[1]
        with self.offline_timer:
            triple = self._dealer.deal(n, m, k)
        with self.online_timer:
            return beaver_matmul(x_shares, w_shares, triple)

    def training_iteration(
        self,
        x_shares: tuple[np.ndarray, np.ndarray],
        w_shares: tuple[np.ndarray, np.ndarray],
        grad_scale: float = 0.01,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Forward + backward matmuls of one LR/MLP-layer iteration.

        The non-linearity is out of scope (as in Table 5); the backward
        uses a synthetic grad of the forward output's shape, secret-shared
        like the real one would be.
        """
        z_shares = self.matmul(x_shares, w_shares)
        grad = decode_ring(reconstruct_ring(*z_shares)) * grad_scale
        grad_shares = share_ring(encode_ring(grad), self.rng)
        xt_shares = (x_shares[0].T.copy(), x_shares[1].T.copy())
        return self.matmul(xt_shares, grad_shares)

    @property
    def total_time(self) -> float:
        return self.offline_timer.elapsed + self.online_timer.elapsed


@dataclass
class SecureMLCostModel:
    """Extrapolates crypto-offline cost for cells too slow to run.

    Calibrate with a small measured triple, then predict a big one from
    the exact Paillier operation counts.  Used by the Table 5 bench to
    report "> limit" instead of running multi-hour cells — the same
    protocol the paper uses for its "> 1800 s" entries.
    """

    measured_ops: int
    measured_seconds: float

    @classmethod
    def calibrate(cls, kernel: SecureMLMatMul, n: int = 2, m: int = 8, k: int = 1):
        if kernel.triple_source != "crypto":
            raise ValueError("cost model only applies to the crypto offline phase")
        rng = kernel.rng
        x = share_ring(rng.integers(0, 2**64, (n, m), dtype=np.uint64), rng)
        w = share_ring(rng.integers(0, 2**64, (m, k), dtype=np.uint64), rng)
        kernel.offline_timer.reset()
        kernel.matmul(x, w)
        ops = PaillierTripleGenerator.unit_cost_ops(n, m, k)
        return cls(measured_ops=ops, measured_seconds=kernel.offline_timer.elapsed)

    def predict_seconds(self, n: int, m: int, k: int) -> float:
        ops = PaillierTripleGenerator.unit_cost_ops(n, m, k)
        return self.measured_seconds * ops / self.measured_ops
