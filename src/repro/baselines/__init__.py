"""Baselines the paper compares against: non-federated training, split
learning (insecure), and SecureML (MPC data outsourcing)."""

from repro.baselines.nonfed import (
    PlainDLRM,
    PlainInputs,
    PlainLR,
    PlainMLP,
    PlainMLR,
    PlainWDL,
    collocated_view,
    evaluate_plain,
    party_b_view,
    plain_model_like,
    train_plain,
)
from repro.baselines.secureml import SecureMLCostModel, SecureMLMatMul, outsource
from repro.baselines.split_learning import (
    SplitLinear,
    SplitRecord,
    SplitWDL,
    train_split_linear,
    train_split_wdl,
)

__all__ = [
    "PlainDLRM",
    "PlainInputs",
    "PlainLR",
    "PlainMLP",
    "PlainMLR",
    "PlainWDL",
    "collocated_view",
    "evaluate_plain",
    "party_b_view",
    "plain_model_like",
    "train_plain",
    "SecureMLCostModel",
    "SecureMLMatMul",
    "outsource",
    "SplitLinear",
    "SplitRecord",
    "SplitWDL",
    "train_split_linear",
    "train_split_wdl",
]
