"""BlindFL reproduction: vertical federated learning without peeking into
your data (SIGMOD 2022).

Public API overview
-------------------

* :mod:`repro.core` — the paper's contribution: federated source layers
  (MatMul, Embed-MatMul), federated models (LR/MLR/MLP/WDL/DLRM), the
  ``FederatedSGD`` optimizer and the training driver.
* :mod:`repro.crypto` — Paillier HE, CryptoTensor, secret sharing, Beaver
  triples.
* :mod:`repro.tensor` — the numpy autograd engine the top models run on.
* :mod:`repro.comm` — party/channel runtime with full transcripts.
* :mod:`repro.baselines` — split learning, SecureML, non-federated.
* :mod:`repro.attacks` — the privacy attacks of §7.2.
* :mod:`repro.data` — synthetic Table-4-shaped datasets, PSI, loaders.
"""

__version__ = "1.0.0"
