"""Duplex channels between federated parties — the three transport tiers.

The paper runs each party on its own server over a 10 Gbps link.  This
module provides three interchangeable channel tiers for that link:

1. :class:`Channel` — in-memory reference passing inside one process.
   Fastest, but payloads cross as live Python objects; byte counts are
   *estimates* (:func:`payload_nbytes`).  What matters for fidelity is that
   (a) *every* cross-party value goes through ``send``/``recv`` — protocol
   code never reads the other party's state directly — and (b) the channel
   records a complete transcript, which is exactly the "view" the
   ideal-real security analysis (and our empirical attack suite) reasons
   about.
2. :class:`SerializingChannel` — same process, but every payload round-trips
   through the wire codec (``encode -> decode``) on each send.  The
   receiver only ever sees what the bytes carry, ``nbytes`` is the
   *measured* frame length, and an unserialisable payload fails loudly at
   the send site.  This is the honest-bytes tier the protocol tests run
   against.
3. :class:`~repro.comm.transport.NetworkChannel` — real TCP sockets between
   separate OS processes (see :mod:`repro.comm.transport`).  Same codec,
   same transcript semantics; frames actually cross the kernel's network
   stack.

All tiers share transcript capture, FIFO-per-receiver delivery, tag-checked
receives and per-sender byte accounting, so protocol code and the security
test-suite are transport-agnostic.
"""

from __future__ import annotations

from collections import defaultdict, deque

import numpy as np

from repro.comm import codec
from repro.comm.message import Message, MessageKind
from repro.obs import tracer as _obs

__all__ = [
    "Channel",
    "CodecChannel",
    "SerializingChannel",
    "make_channel",
    "payload_nbytes",
]


def payload_nbytes(payload: object, cipher_bytes: int | None = None) -> int:
    """Estimate the wire size of a payload.

    A Paillier ciphertext lives mod ``n**2``, so it costs ``2 * key_bits /
    8`` bytes — derived from the *actual* public key the payload carries
    (512 B for the paper's 2048-bit production keys).  Callers may pin an
    explicit ``cipher_bytes``; 512 B is only the fallback for payloads
    that carry no key.  Packed tensors are charged per *ciphertext*, not
    per logical element — the ``slots``-fold bandwidth saving the packing
    subsystem exists for.  Numpy arrays cost their buffer size.

    This estimator prices payload *bodies* only; the codec adds a small
    fixed framing overhead (preamble, routing strings, shape/exponent
    headers) on top.  ``tests/test_codec.py`` pins the two against each
    other, and :class:`SerializingChannel` records the measured frame
    length instead of calling this at all.
    """
    # Local import: crypto depends on comm for HE2SS, so keep this lazy.
    from repro.crypto.crypto_tensor import CryptoTensor
    from repro.crypto.packing import PackedCryptoTensor
    from repro.crypto.paillier import EncryptedNumber

    def _ct_bytes(public_key: object) -> int:
        if cipher_bytes is not None:
            return cipher_bytes
        key_bits = getattr(public_key, "key_bits", None)
        if key_bits is None:
            return 512  # no key in sight: assume the production key size
        return 2 * ((key_bits + 7) // 8)

    if isinstance(payload, CryptoTensor):
        return payload.size * _ct_bytes(payload.public_key)
    if isinstance(payload, PackedCryptoTensor):
        return payload.n_ciphertexts * _ct_bytes(payload.public_key)
    if isinstance(payload, EncryptedNumber):
        return _ct_bytes(payload.public_key)
    if isinstance(payload, np.ndarray):
        return payload.nbytes
    if isinstance(payload, np.generic):
        # Numpy *scalars* (np.int64 off an ndarray, np.float32, np.bool_)
        # are not Python int/float subclasses across the board, so they
        # must be priced before the builtin branches — at their actual
        # storage width, which numpy exposes directly.
        return payload.nbytes
    if isinstance(payload, (list, tuple)):
        return sum(payload_nbytes(p, cipher_bytes) for p in payload)
    if isinstance(payload, dict):
        # The codec carries containers; a dict costs what its items cost.
        return sum(
            payload_nbytes(k, cipher_bytes) + payload_nbytes(v, cipher_bytes)
            for k, v in payload.items()
        )
    if isinstance(payload, bool):  # before int: bool is an int subclass
        return 1
    if isinstance(payload, (int, float)):
        return 8
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if isinstance(payload, (bytes, bytearray)):
        return len(payload)
    if payload is None:
        return 0
    # Anything else used to be silently priced at 0 bytes — an unpriceable
    # payload now fails at the accounting site, mirroring the codec's
    # UnsupportedWireType refusal at the serialisation site.
    raise TypeError(
        f"cannot price payload type {type(payload).__name__}: it has no "
        f"known wire size (and no wire format — see repro.comm.codec)"
    )


class Channel:
    """FIFO message transport with transcript capture and byte accounting.

    Subclasses customise two hooks: :meth:`_transcode` (what happens to a
    message between send and delivery — the serializing tier round-trips
    it through the wire codec here) and :meth:`_deliver` (how the message
    reaches the receiver — the network tier writes frames to a socket).
    """

    def __init__(self, record_transcript: bool = True):
        self.record_transcript = record_transcript
        self.transcript: list[Message] = []
        # Plain dict on purpose: the ledger is read by reconciliation
        # probes (telemetry byte-equality, bench gates), and a defaultdict
        # would *mutate on read* — probing a never-sent party must not
        # plant a zero entry that masks the sender being missing.
        self.bytes_by_sender: dict[str, int] = {}
        self.messages_by_kind: dict[MessageKind, int] = defaultdict(int)
        self._queues: dict[str, deque[Message]] = defaultdict(deque)
        self._seq = 0

    def send(
        self,
        sender: str,
        receiver: str,
        tag: str,
        payload: object,
        kind: MessageKind,
    ) -> None:
        """Enqueue a message for ``receiver``."""
        if sender == receiver:
            raise ValueError("a party cannot message itself")
        self._seq += 1
        msg = Message(
            sender=sender,
            receiver=receiver,
            tag=tag,
            kind=kind,
            payload=payload,
            seq=self._seq,
        )
        msg = self._transcode(msg)
        self._account(msg)
        # The traced byte counters mirror bytes_by_sender exactly (same
        # nbytes, same send site), attributed to the span in flight.
        trc = _obs.get_tracer()
        if trc is not None:
            trc.add("frames.sent", 1)
            trc.add("bytes.sent", msg.nbytes)
            trc.add("bytes.sent." + sender, msg.nbytes)
        if self.record_transcript:
            self.transcript.append(msg)
        self._deliver(msg)

    def _account(self, msg: Message) -> None:
        """Hook: record a message in the byte/kind ledgers.

        Kept separate from :meth:`send` so tiers whose frames arrive on
        background threads (the N-party fabric) can lock the same ledger
        for inbound traffic.
        """
        self.bytes_by_sender[msg.sender] = (
            self.bytes_by_sender.get(msg.sender, 0) + msg.nbytes
        )
        self.messages_by_kind[msg.kind] += 1

    def _transcode(self, msg: Message) -> Message:
        """Hook: transform a message before accounting and delivery.

        The base tier prices the payload with the estimator here; tiers
        that encode real frames replace this wholesale with the measured
        frame length, so the O(size) estimate is never computed for them.
        """
        msg.nbytes = payload_nbytes(msg.payload)
        return msg

    def _deliver(self, msg: Message) -> None:
        """Hook: hand a transcoded message to its receiver."""
        self._queues[msg.receiver].append(msg)

    def register_public_key(self, public_key: object) -> None:
        """Hook: tiers with a codec key ring register party keys here.

        The in-memory tier passes objects by reference and needs no ring;
        this no-op lets :class:`~repro.comm.party.VFLContext` register its
        keys unconditionally.
        """

    def recv(self, receiver: str, tag: str | None = None) -> object:
        """Dequeue the next message addressed to ``receiver``.

        When ``tag`` is given, the protocol asserts it expects that step —
        a mismatch means two protocol sides ran out of sync, which we want
        to fail loudly rather than mis-deliver.
        """
        queue = self._queues[receiver]
        if not queue:
            raise LookupError(f"no pending message for party {receiver!r}")
        msg = queue.popleft()
        if tag is not None and msg.tag != tag:
            raise LookupError(
                f"protocol desync: party {receiver!r} expected tag {tag!r} "
                f"but next message is {msg.tag!r}"
            )
        return msg.payload

    def pending(self, receiver: str) -> int:
        """Number of undelivered messages for a party."""
        return len(self._queues[receiver])

    def view_of(self, party: str) -> list[Message]:
        """All messages a party received — its protocol 'view'."""
        return [m for m in self.transcript if m.receiver == party]

    def total_bytes(self) -> int:
        return sum(self.bytes_by_sender.values())

    def reset_stats(self) -> None:
        """Clear transcript and counters (queues must already be drained)."""
        for receiver, queue in self._queues.items():
            if queue:
                raise RuntimeError(
                    f"cannot reset channel with {len(queue)} undelivered "
                    f"messages for {receiver!r}"
                )
        self.transcript.clear()
        self.bytes_by_sender.clear()
        self.messages_by_kind.clear()
        self._seq = 0


class CodecChannel(Channel):
    """Shared base for the tiers that move real frames through the codec.

    Holds the key ring decoded payloads are resolved against: party keys
    registered via :meth:`register_public_key` are reused during decode,
    so decoded tensors share the original seeded key objects and whole
    training trajectories stay bit-identical to the in-memory tier.
    """

    def __init__(self, record_transcript: bool = True):
        super().__init__(record_transcript)
        self.key_ring: dict[int, object] = {}

    def register_public_key(self, public_key: object) -> None:
        self.key_ring[public_key.n] = public_key


class SerializingChannel(CodecChannel):
    """In-process channel that forces every payload through honest bytes.

    Each ``send`` encodes the full message to a wire frame and delivers
    the *decoded* frame: the receiver's object is reconstructed purely
    from bytes, ``nbytes`` is the measured ``len(frame)``, and a payload
    the codec cannot express raises at the send site.
    """

    def _transcode(self, msg: Message) -> Message:
        frame = codec.encode_message(msg)
        return codec.decode_message(frame, key_ring=self.key_ring)


CHANNEL_KINDS = ("memory", "serializing")


def make_channel(kind: str, record_transcript: bool = True) -> Channel:
    """Channel factory for the in-process tiers.

    ``"memory"`` passes objects by reference (fastest); ``"serializing"``
    round-trips every payload through the wire codec (honest bytes,
    measured sizes).  The network tier is not constructible here — it
    needs a connected socket; see :func:`repro.comm.transport.run_two_party`.
    """
    if kind == "memory":
        return Channel(record_transcript=record_transcript)
    if kind == "serializing":
        return SerializingChannel(record_transcript=record_transcript)
    raise ValueError(
        f"unknown channel kind {kind!r}; expected one of {CHANNEL_KINDS}"
    )
