"""In-memory duplex channel between federated parties.

The paper runs each party on its own server over a 10 Gbps link; here both
parties live in one process and exchange values through this channel.  What
matters for fidelity is that (a) *every* cross-party value goes through
``send``/``recv`` — protocol code never reads the other party's state
directly — and (b) the channel records a complete transcript, which is
exactly the "view" that the ideal-real security analysis (and our empirical
attack suite) reasons about.
"""

from __future__ import annotations

from collections import defaultdict, deque

import numpy as np

from repro.comm.message import Message, MessageKind

__all__ = ["Channel", "payload_nbytes"]


def payload_nbytes(payload: object, cipher_bytes: int | None = None) -> int:
    """Estimate the wire size of a payload.

    A Paillier ciphertext lives mod ``n**2``, so it costs ``2 * key_bits /
    8`` bytes — derived from the *actual* public key the payload carries
    (512 B for the paper's 2048-bit production keys).  Callers may pin an
    explicit ``cipher_bytes``; 512 B is only the fallback for payloads
    that carry no key.  Packed tensors are charged per *ciphertext*, not
    per logical element — the ``slots``-fold bandwidth saving the packing
    subsystem exists for.  Numpy arrays cost their buffer size.
    """
    # Local import: crypto depends on comm for HE2SS, so keep this lazy.
    from repro.crypto.crypto_tensor import CryptoTensor
    from repro.crypto.packing import PackedCryptoTensor
    from repro.crypto.paillier import EncryptedNumber

    def _ct_bytes(public_key: object) -> int:
        if cipher_bytes is not None:
            return cipher_bytes
        key_bits = getattr(public_key, "key_bits", None)
        if key_bits is None:
            return 512  # no key in sight: assume the production key size
        return 2 * ((key_bits + 7) // 8)

    if isinstance(payload, CryptoTensor):
        return payload.size * _ct_bytes(payload.public_key)
    if isinstance(payload, PackedCryptoTensor):
        return payload.n_ciphertexts * _ct_bytes(payload.public_key)
    if isinstance(payload, EncryptedNumber):
        return _ct_bytes(payload.public_key)
    if isinstance(payload, np.ndarray):
        return payload.nbytes
    if isinstance(payload, (list, tuple)):
        return sum(payload_nbytes(p, cipher_bytes) for p in payload)
    if isinstance(payload, (int, float)):
        return 8
    return 0


class Channel:
    """FIFO message transport with transcript capture and byte accounting."""

    def __init__(self, record_transcript: bool = True):
        self.record_transcript = record_transcript
        self.transcript: list[Message] = []
        self.bytes_by_sender: dict[str, int] = defaultdict(int)
        self.messages_by_kind: dict[MessageKind, int] = defaultdict(int)
        self._queues: dict[str, deque[Message]] = defaultdict(deque)
        self._seq = 0

    def send(
        self,
        sender: str,
        receiver: str,
        tag: str,
        payload: object,
        kind: MessageKind,
    ) -> None:
        """Enqueue a message for ``receiver``."""
        if sender == receiver:
            raise ValueError("a party cannot message itself")
        self._seq += 1
        msg = Message(
            sender=sender,
            receiver=receiver,
            tag=tag,
            kind=kind,
            payload=payload,
            nbytes=payload_nbytes(payload),
            seq=self._seq,
        )
        self.bytes_by_sender[sender] += msg.nbytes
        self.messages_by_kind[kind] += 1
        if self.record_transcript:
            self.transcript.append(msg)
        self._queues[receiver].append(msg)

    def recv(self, receiver: str, tag: str | None = None) -> object:
        """Dequeue the next message addressed to ``receiver``.

        When ``tag`` is given, the protocol asserts it expects that step —
        a mismatch means two protocol sides ran out of sync, which we want
        to fail loudly rather than mis-deliver.
        """
        queue = self._queues[receiver]
        if not queue:
            raise LookupError(f"no pending message for party {receiver!r}")
        msg = queue.popleft()
        if tag is not None and msg.tag != tag:
            raise LookupError(
                f"protocol desync: party {receiver!r} expected tag {tag!r} "
                f"but next message is {msg.tag!r}"
            )
        return msg.payload

    def pending(self, receiver: str) -> int:
        """Number of undelivered messages for a party."""
        return len(self._queues[receiver])

    def view_of(self, party: str) -> list[Message]:
        """All messages a party received — its protocol 'view'."""
        return [m for m in self.transcript if m.receiver == party]

    def total_bytes(self) -> int:
        return sum(self.bytes_by_sender.values())

    def reset_stats(self) -> None:
        """Clear transcript and counters (queues must already be drained)."""
        for receiver, queue in self._queues.items():
            if queue:
                raise RuntimeError(
                    f"cannot reset channel with {len(queue)} undelivered "
                    f"messages for {receiver!r}"
                )
        self.transcript.clear()
        self.bytes_by_sender.clear()
        self.messages_by_kind.clear()
        self._seq = 0
