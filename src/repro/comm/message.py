"""Typed messages exchanged between federated parties.

Every value crossing the party boundary is wrapped in a :class:`Message`
whose ``kind`` classifies its protection level.  The security test-suite
asserts that BlindFL's protocols never emit ``PLAINTEXT`` messages — that
kind exists so the split-learning baseline can be implemented on the same
channel and its leakage demonstrated on real transcripts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["MessageKind", "Message"]


class MessageKind(enum.Enum):
    """Protection level of a payload on the wire."""

    CIPHERTEXT = "ciphertext"
    """Paillier-encrypted under a key the receiver may or may not hold."""

    SHARE = "share"
    """One additive secret-share piece; marginally uniform noise."""

    OUTPUT_SHARE = "output-share"
    """A share of a value the receiver is *entitled* to reconstruct
    (e.g. Z' pieces summing to the source-layer output Z at Party B)."""

    PUBLIC = "public"
    """Non-sensitive metadata: shapes, public keys, batch ids."""

    PLAINTEXT = "plaintext"
    """Unprotected sensitive value.  Only baselines may send these."""

    @property
    def wire_code(self) -> int:
        """Stable one-byte code for the wire codec (never renumber)."""
        return _WIRE_CODES[self]

    @classmethod
    def from_wire(cls, code: int) -> "MessageKind":
        try:
            return _KINDS_BY_CODE[code]
        except KeyError:
            raise ValueError(f"unknown MessageKind wire code {code}") from None


_WIRE_CODES = {
    MessageKind.CIPHERTEXT: 1,
    MessageKind.SHARE: 2,
    MessageKind.OUTPUT_SHARE: 3,
    MessageKind.PUBLIC: 4,
    MessageKind.PLAINTEXT: 5,
}
_KINDS_BY_CODE = {code: kind for kind, code in _WIRE_CODES.items()}


@dataclass
class Message:
    """A single cross-party transmission."""

    sender: str
    receiver: str
    tag: str
    kind: MessageKind
    payload: object
    nbytes: int = 0
    seq: int = field(default=0, compare=False)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Message({self.sender}->{self.receiver}, tag={self.tag!r}, "
            f"kind={self.kind.value}, nbytes={self.nbytes})"
        )
