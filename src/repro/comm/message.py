"""Typed messages exchanged between federated parties.

Every value crossing the party boundary is wrapped in a :class:`Message`
whose ``kind`` classifies its protection level.  The security test-suite
asserts that BlindFL's protocols never emit ``PLAINTEXT`` messages — that
kind exists so the split-learning baseline can be implemented on the same
channel and its leakage demonstrated on real transcripts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["MessageKind", "Message"]


class MessageKind(enum.Enum):
    """Protection level of a payload on the wire."""

    CIPHERTEXT = "ciphertext"
    """Paillier-encrypted under a key the receiver may or may not hold."""

    SHARE = "share"
    """One additive secret-share piece; marginally uniform noise."""

    OUTPUT_SHARE = "output-share"
    """A share of a value the receiver is *entitled* to reconstruct
    (e.g. Z' pieces summing to the source-layer output Z at Party B)."""

    PUBLIC = "public"
    """Non-sensitive metadata: shapes, public keys, batch ids."""

    PLAINTEXT = "plaintext"
    """Unprotected sensitive value.  Only baselines may send these."""


@dataclass
class Message:
    """A single cross-party transmission."""

    sender: str
    receiver: str
    tag: str
    kind: MessageKind
    payload: object
    nbytes: int = 0
    seq: int = field(default=0, compare=False)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Message({self.sender}->{self.receiver}, tag={self.tag!r}, "
            f"kind={self.kind.value}, nbytes={self.nbytes})"
        )
