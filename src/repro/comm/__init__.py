"""Communication runtime: codec, channels, transport, parties, federation."""

from repro.comm.channel import (
    Channel,
    SerializingChannel,
    make_channel,
    payload_nbytes,
)
from repro.comm.fabric import FabricChannel, FabricTopology, run_federation
from repro.comm.message import Message, MessageKind
from repro.comm.party import Party, VFLConfig, VFLContext

__all__ = [
    "Channel",
    "SerializingChannel",
    "make_channel",
    "payload_nbytes",
    "FabricChannel",
    "FabricTopology",
    "run_federation",
    "Message",
    "MessageKind",
    "Party",
    "VFLConfig",
    "VFLContext",
]
