"""Communication runtime: messages, channels, parties, federation context."""

from repro.comm.channel import Channel, payload_nbytes
from repro.comm.message import Message, MessageKind
from repro.comm.party import Party, VFLConfig, VFLContext

__all__ = [
    "Channel",
    "payload_nbytes",
    "Message",
    "MessageKind",
    "Party",
    "VFLConfig",
    "VFLContext",
]
