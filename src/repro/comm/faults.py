"""Deterministic fault injection for the federation transport.

Chaos testing is only useful when it is *reproducible*: a fault schedule
that depends on wall-clock timing or un-seeded randomness produces
unrepeatable failures.  This module schedules faults **by frame index**
from a seeded plan, so a failing chaos run replays bit-identically.

Two injection points cover the channel tiers:

* :class:`FaultySocket` wraps a real socket under the network tier and
  perturbs *outbound DATA link envelopes* (see
  :mod:`repro.comm.transport`): drop, duplicate, corrupt (one bit in the
  payload region, so link framing survives and the CRC catches it), delay,
  and a full injected disconnect.  Control envelopes (NAK/RESUME) and bare
  handshake frames pass through untouched — faults stay frame-granular and
  the recovery machinery itself is never sabotaged, which is what makes
  the deterministic replay argument go through.
* :class:`FaultyChannel` applies the same plan to encoded codec frames on
  the in-process serializing tier, for fast detection tests that need no
  sockets: a corrupted frame must raise
  :class:`~repro.comm.codec.FrameIntegrityError` at the send site, a
  dropped frame must surface as a protocol desync, never as silent
  mis-delivery.

The plan itself is a picklable value object, so :func:`run_two_party` can
ship per-endpoint plans to its child processes.
"""

from __future__ import annotations

import random
import socket
import time
from dataclasses import dataclass, field

from repro.comm import codec
from repro.comm.channel import SerializingChannel
from repro.comm.message import Message

__all__ = [
    "FAULT_ACTIONS",
    "FaultEvent",
    "FaultPlan",
    "FaultySocket",
    "FaultyChannel",
    "flip_bit",
    "corrupt_codec_frame",
    "per_link_plans",
]

FAULT_ACTIONS = ("drop", "duplicate", "corrupt", "delay", "disconnect")


def flip_bit(data: bytes, offset: int, mask: int = 0x01) -> bytes:
    """Return ``data`` with ``mask`` XORed into the byte at ``offset``."""
    out = bytearray(data)
    out[offset] ^= mask
    return bytes(out)


def corrupt_codec_frame(frame: bytes, salt: int = 0) -> bytes:
    """Flip one deterministic bit inside a codec frame's *body* region.

    The preamble is left intact so the frame still parses as a frame — the
    corruption must be caught by the CRC32 trailer
    (:func:`repro.comm.codec.check_frame`), not by a length accident.
    """
    body_len = len(frame) - codec.PREAMBLE_SIZE - codec.CRC_SIZE
    if body_len <= 0:  # pragma: no cover - every real frame has a body
        return flip_bit(frame, len(frame) - 1)
    offset = codec.PREAMBLE_SIZE + (salt * 13) % body_len
    return flip_bit(frame, offset, 0x01 << (salt % 8))


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: apply ``action`` to the ``frame``-th DATA frame.

    Frame indices are 1-based and count only faultable frames (DATA
    envelopes on the socket tier, protocol frames on the channel tier).
    ``delay`` is the sleep in seconds for ``action == "delay"``.
    """

    frame: int
    action: str
    delay: float = 0.05

    def __post_init__(self):
        if self.action not in FAULT_ACTIONS:
            raise ValueError(
                f"unknown fault action {self.action!r}; "
                f"expected one of {FAULT_ACTIONS}"
            )
        if self.frame < 1:
            raise ValueError("fault frame indices are 1-based")


@dataclass(frozen=True)
class FaultPlan:
    """A reproducible schedule of transport faults.

    Build one explicitly from :class:`FaultEvent` entries, or use
    :meth:`seeded` to draw a schedule from rates — same seed, same rates,
    same schedule, every run.  The plan is immutable and picklable.
    """

    events: tuple[FaultEvent, ...] = ()
    seed: int = 0

    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        frames: int,
        drop_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        corrupt_rate: float = 0.0,
        delay_rate: float = 0.0,
        delay: float = 0.02,
        disconnect_at: int | None = None,
    ) -> "FaultPlan":
        """Draw at most one fault per frame index from ``random.Random(seed)``.

        Rates are per-frame probabilities, evaluated in a fixed order
        (drop, duplicate, corrupt, delay) so the schedule is a pure
        function of ``(seed, frames, rates)``.  ``disconnect_at`` adds a
        single injected disconnect at that frame index.
        """
        rng = random.Random(seed)
        events: list[FaultEvent] = []
        for index in range(1, frames + 1):
            if disconnect_at is not None and index == disconnect_at:
                events.append(FaultEvent(index, "disconnect"))
                continue
            draw = rng.random()
            threshold = 0.0
            for action, rate in (
                ("drop", drop_rate),
                ("duplicate", duplicate_rate),
                ("corrupt", corrupt_rate),
                ("delay", delay_rate),
            ):
                threshold += rate
                if draw < threshold:
                    events.append(FaultEvent(index, action, delay=delay))
                    break
        return cls(events=tuple(events), seed=seed)

    def events_for(self, index: int) -> tuple[FaultEvent, ...]:
        """All scheduled faults for the ``index``-th faultable frame."""
        return tuple(ev for ev in self.events if ev.frame == index)

    def __bool__(self) -> bool:
        return bool(self.events)


def per_link_plans(
    fault_plans: dict,
    roles,
    aliases: dict[str, str] | None = None,
) -> dict[str, dict[str, "FaultPlan"]]:
    """Normalise fabric fault addressing to ``{sender: {receiver: plan}}``.

    ``fault_plans`` keys address *directed* fabric links: a
    ``(sender_role, receiver_role)`` pair faults that one outbound
    direction, while a bare sender role is shorthand for every outbound
    link of that role.  ``aliases`` maps alternate names onto roles (the
    fabric passes its party→home-role map, so ``("A1", "B")`` addresses
    the link between those parties' endpoints).  Explicit pairs win over
    the shorthand for the same link.  Faults are injected on the sender's
    side of the duplex socket, so each direction of a link carries its
    own independent schedule (and frame counter).
    """
    roles = sorted(roles)
    role_set = set(roles)
    aliases = aliases or {}
    if len(role_set) < 2:
        raise ValueError("per-link fault plans need at least two fabric roles")
    plans: dict[str, dict[str, FaultPlan]] = {role: {} for role in roles}

    def _check(key, name) -> str:
        role = name if name in role_set else aliases.get(name)
        if role is None:
            raise ValueError(
                f"fault plan key {key!r} names unknown fabric role {name!r}; "
                f"roles are {roles}"
            )
        return role

    pairs: list[tuple[tuple[str, str], FaultPlan]] = []
    for key, plan in sorted(fault_plans.items(), key=lambda kv: str(kv[0])):
        if not isinstance(plan, FaultPlan):
            raise ValueError(
                f"fault plan for {key!r} must be a FaultPlan, "
                f"got {type(plan).__name__}"
            )
        if isinstance(key, str):
            sender = _check(key, key)
            for receiver in roles:
                if receiver != sender:
                    plans[sender][receiver] = plan
            continue
        if isinstance(key, tuple) and len(key) == 2:
            sender, receiver = (_check(key, r) for r in key)
            if sender == receiver:
                raise ValueError(
                    f"fault plan key {key!r} must name two distinct roles"
                )
            pairs.append(((sender, receiver), plan))
            continue
        raise ValueError(
            f"fault plan key {key!r} must be a role name or a "
            "(sender_role, receiver_role) pair"
        )
    for (sender, receiver), plan in pairs:
        plans[sender][receiver] = plan
    return {role: links for role, links in plans.items() if links}


class FaultySocket:
    """A socket wrapper that perturbs outbound DATA envelopes per plan.

    Only DATA link envelopes advance the frame counter and are eligible
    for faults; handshake frames and NAK/RESUME control envelopes are
    forwarded verbatim.  ``applied`` logs ``(frame_index, action)`` for
    every fault actually injected, so tests can assert the schedule fired.

    The wrapper survives reconnects: :meth:`rebind` swaps in the fresh
    socket while the frame counter (and therefore the remaining schedule)
    keeps counting — an injected disconnect at frame 40 still leaves a
    corrupt scheduled for frame 55 armed on the new connection.
    """

    def __init__(self, sock: socket.socket, plan: FaultPlan):
        self._sock = sock
        self.plan = plan
        self.data_frames = 0
        self.applied: list[tuple[int, str]] = []

    def rebind(self, sock: socket.socket) -> "FaultySocket":
        """Point the wrapper at a fresh socket after a reconnect."""
        self._sock = sock
        return self

    def sendall(self, data: bytes) -> None:
        from repro.comm.transport import is_data_envelope

        if not is_data_envelope(data):
            return self._sock.sendall(data)
        self.data_frames += 1
        index = self.data_frames
        out = data
        for event in self.plan.events_for(index):
            self.applied.append((index, event.action))
            if event.action == "drop":
                return None  # swallow the envelope entirely
            if event.action == "duplicate":
                self._sock.sendall(out)
            elif event.action == "corrupt":
                out = self._corrupt_envelope(out, salt=index)
            elif event.action == "delay":
                time.sleep(event.delay)
            elif event.action == "disconnect":
                try:
                    self._sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
                self._sock.close()
                raise ConnectionResetError(
                    f"injected disconnect at DATA frame {index}"
                )
        return self._sock.sendall(out)

    @staticmethod
    def _corrupt_envelope(env: bytes, salt: int) -> bytes:
        """Flip one bit in the envelope's payload region.

        The link header and length field stay intact, so the receiver
        still reads a complete envelope and the CRC check — not a framing
        accident — detects the corruption and triggers a NAK.
        """
        from repro.comm.transport import ENV_HEADER_SIZE

        payload_len = len(env) - ENV_HEADER_SIZE - 4
        if payload_len <= 0:  # pragma: no cover - DATA always has a payload
            return flip_bit(env, len(env) - 1)
        offset = ENV_HEADER_SIZE + (salt * 13) % payload_len
        return flip_bit(env, offset, 0x01 << (salt % 8))

    # Everything else behaves like the wrapped socket (recv, settimeout,
    # close, getsockname, ...), so the link layer never needs to know it
    # is being sabotaged.
    def __getattr__(self, name: str):
        return getattr(self._sock, name)


class FaultyChannel(SerializingChannel):
    """Serializing channel with plan-scheduled faults on encoded frames.

    The in-process twin of :class:`FaultySocket`, for detection tests that
    need no sockets.  Here there is no reliability sublayer, so injected
    faults must *surface*, never be masked:

    * ``corrupt`` — the decoded-from-bytes delivery raises
      :class:`~repro.comm.codec.FrameIntegrityError` at the send site;
    * ``drop`` — delivery is skipped, so the receiver's next ``recv``
      fails loudly (empty queue or tag desync);
    * ``duplicate`` — the frame is delivered twice, surfacing as a tag
      desync at the receiver;
    * ``disconnect`` — the send raises :class:`BrokenPipeError`;
    * ``delay`` — sleeps (the only masked fault: in-process delivery has
      no timeout to trip).
    """

    def __init__(self, plan: FaultPlan, record_transcript: bool = True):
        super().__init__(record_transcript)
        self.plan = plan
        self.data_frames = 0
        self.applied: list[tuple[int, str]] = []
        self._suppress_delivery = False
        self._duplicate_delivery = False

    def _transcode(self, msg: Message) -> Message:
        frame = codec.encode_message(msg)
        self.data_frames += 1
        index = self.data_frames
        self._suppress_delivery = False
        self._duplicate_delivery = False
        for event in self.plan.events_for(index):
            self.applied.append((index, event.action))
            if event.action == "corrupt":
                frame = corrupt_codec_frame(frame, salt=index)
            elif event.action == "drop":
                self._suppress_delivery = True
            elif event.action == "duplicate":
                self._duplicate_delivery = True
            elif event.action == "delay":
                time.sleep(event.delay)
            elif event.action == "disconnect":
                raise BrokenPipeError(
                    f"injected disconnect at frame {index}"
                )
        # decode_message CRC-checks the frame: a corrupted frame raises
        # FrameIntegrityError right here, at the send site.
        return codec.decode_message(frame, key_ring=self.key_ring)

    def _deliver(self, msg: Message) -> None:
        if self._suppress_delivery:
            return
        super()._deliver(msg)
        if self._duplicate_delivery:
            super()._deliver(msg)
