"""N-party federation fabric: one OS process per endpoint, no mirroring.

The mirrored two-party tier (:mod:`repro.comm.transport`) runs the *same*
seeded program in both processes and drives remote parties from decoded
wire bytes.  That trick does not scale past two endpoints: with M Party
A's plus the key owner, every process would replay every other party's
crypto.  The fabric is the real runtime the paper's Appendix C deployment
implies — an endpoint **grid**:

* each endpoint hosts one or more parties (its *placement*) and executes
  **only their side** of the protocol — remote statements never run here
  (see :mod:`repro.core.multiparty` for the actor-guarded layers);
* endpoints are wired by lazily-established duplex
  :class:`~repro.comm.transport.ReliableLink` s: the first send toward a
  peer dials it, pairs that never exchange traffic never connect;
* crossing dials (both ends of a pair dialing at once) are resolved by
  the lower-named role of the pair, whose accept/dial decision is taken
  under one lock and is authoritative — the higher-named role's refused
  dial simply waits for the authoritative dial to land;
* each endpoint holds a *per-endpoint key store*: all seeded public keys
  (so ciphertexts decode against the shared key objects), but only its
  own parties' private keys — see
  :class:`~repro.comm.party.VFLContext` ``local_parties``;
* incoming frames are decoded on per-link receiver threads into a
  tag-addressed mailbox, because arrival order *between* senders is
  scheduling-dependent; per-link FIFO (and therefore per-pair protocol
  order) is still exact.

Pipelined transfers
-------------------
With ``pipeline`` on, outbound frames are handed to a bounded send queue
drained by one sender thread: the masked tensor of batch ``k`` is on the
wire while the protocol encrypts/packs batch ``k+1`` — the queue depth of
two is exactly a double buffer for HE2SS mask frames (one in flight, one
being prepared).  Frame *order and content* are untouched, so seeded
trajectories stay bit-identical with the knob on or off; the default is
off so the blocking tier remains the reference behaviour.

Fault tolerance
---------------
Each grid link is a full :class:`~repro.comm.transport.ReliableLink`:
per-link fault plans (``run_federation(fault_plans={(sender, receiver):
plan})``) wrap the sender's side of a duplex socket in a
:class:`~repro.comm.faults.FaultySocket` at dial/accept time and rebind
it across reconnects, so a seeded chaos schedule survives the socket
swap while hello/NAK/RESUME/FIN control traffic passes clean.  Link
death recovers deterministically — the lower-named role redials, the
higher-named role's acceptor hands the fresh socket to its waiting
reconnector — and a peer that stays dead past the seeded retry budget
surfaces as ``FatalTransportError("peer <role> unreachable ...")`` on
both the send and receive paths instead of a hang.  The driver watches
child liveness during startup and the result gather, so a killed
endpoint fails the whole grid fast with the dead role named.

Determinism
-----------
Losses and weights of a fabric run are bit-identical to the in-process
tiers because each party's RNG draw order is preserved on its home
endpoint, obfuscation blinders never survive decryption, and HE2SS masks
cancel exactly in the reassembled weight pieces.  What *is*
scheduling-dependent is cross-sender arrival order (absorbed by the
mailbox) and blinding-stream positions (value-free by construction).
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
import socket
import threading
import time
import traceback
from collections import deque

from repro.comm import codec
from repro.comm.channel import CodecChannel
from repro.comm.faults import FaultPlan, FaultySocket, per_link_plans
from repro.comm.message import Message
from repro.comm.transport import (
    FatalTransportError,
    ReliableLink,
    RetryableTransportError,
    RetryPolicy,
    TransportDisconnected,
    TransportError,
    TransportTimeout,
    _await_results,
    _endpoint_main,
    read_frame,
)

__all__ = [
    "FabricTopology",
    "FabricChannel",
    "run_federation",
]

# Receiver threads poll their socket in short slices so close requests are
# observed promptly; this is a scheduling knob, not a protocol timeout.
_POLL_S = 0.25

# How many poll slices the higher-named role of a pair waits for the
# lower-named role's redial before burning one reconnect attempt — each
# attempt of the seeded retry budget re-enters this window.
_RECONNECT_WAIT_SLICES = 8


class FabricTopology:
    """The placement map of a federation: which role hosts which parties.

    Roles are endpoint names (one OS process each); parties are protocol
    actors.  Every party lives at exactly one role — the fabric refuses
    overlapping claims because a party with two homes is the mirrored
    model this tier exists to replace.
    """

    def __init__(self, roles: dict[str, tuple[str, ...] | list[str]]):
        if len(roles) < 2:
            raise ValueError("a federation needs at least two endpoints")
        self.roles: dict[str, tuple[str, ...]] = {}
        home: dict[str, str] = {}
        for role, parties in roles.items():
            parties = tuple(parties)
            if not parties:
                raise ValueError(f"role {role!r} hosts no parties")
            self.roles[role] = parties
            for party in parties:
                if party in home:
                    raise ValueError(
                        f"party {party!r} is claimed by both role "
                        f"{home[party]!r} and role {role!r}"
                    )
                home[party] = role
        self._home = home

    @property
    def parties(self) -> tuple[str, ...]:
        return tuple(self._home)

    def home_of(self, party: str) -> str:
        """The role hosting ``party``."""
        try:
            return self._home[party]
        except KeyError:
            raise LookupError(
                f"party {party!r} is not placed anywhere in the topology "
                f"{self.roles}"
            ) from None


class _PipelinedSender:
    """Bounded async outbound path — the double buffer behind ``pipeline``.

    One daemon thread drains a depth-bounded queue of encoded frames in
    submission order, so exactly one frame can be on the wire while the
    protocol prepares the next (HE2SS mask encryption, packing).  A full
    queue back-pressures ``submit`` — the lookahead never exceeds the
    buffer depth, and frame order is globally preserved.
    """

    def __init__(self, channel: FabricChannel, depth: int = 2):
        self._channel = channel
        self._queue: queue_mod.Queue = queue_mod.Queue(maxsize=depth)
        self._error: str | None = None
        self._current: str | None = None
        self._thread = threading.Thread(
            target=self._run, name=f"fabric-tx-{channel.role}", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is None:
                    return
                peer_role, frame = item
                self._current = peer_role
                self._channel._send_to_peer(peer_role, frame)
            except BaseException:
                self._error = traceback.format_exc()
            finally:
                self._queue.task_done()

    def _check(self) -> None:
        if self._error is not None:
            raise FatalTransportError(
                f"pipelined sender failed:\n{self._error}"
            )

    def submit(self, peer_role: str, frame: bytes) -> None:
        self._check()
        self._queue.put((peer_role, frame))

    def stop(self) -> None:
        """Drain every queued frame, then stop the thread.

        A sender still alive after the join means an undrained frame is
        wedged on the wire — returning as if shutdown succeeded would let
        a silently lossy close masquerade as a clean one, so this fails
        fatally and names the peer whose send never completed.
        """
        self._queue.put(None)
        self._thread.join(timeout=60.0)
        if self._thread.is_alive():
            raise FatalTransportError(
                f"pipelined sender for {self._channel.role!r} failed to "
                f"drain within 60s — send toward peer {self._current!r} "
                f"never completed ({self._queue.qsize()} frames still queued)"
            )
        self._check()


class FabricChannel(CodecChannel):
    """A non-mirrored endpoint of the fabric: sends and receives are local.

    A send whose *sender* is remote — or a recv for a remote party — is a
    programming error on this tier and fails fatally: there is no mirror
    to absorb it.  A send to a co-located party short-circuits through
    the codec like the serializing tier; a send to a remote party
    transmits the frame on the pair's link (dialled on first use).

    Byte accounting covers both directions: outbound frames are charged
    at the send site, inbound frames at decode (same measured length on
    both ends of a link) — so the key owner's ledger, which every
    protocol message touches, reconciles with the single-process tiers.
    """

    def __init__(
        self,
        role: str,
        topology: FabricTopology,
        ports: dict[str, int],
        listener: socket.socket,
        *,
        record_transcript: bool = True,
        retry: RetryPolicy | None = None,
        timeout: float = 120.0,
        close_timeout: float = 10.0,
        pipeline: bool = False,
        sock_timeout: float | None = None,
        fault_plans: dict[str, FaultPlan] | None = None,
        idle_nak_peers=None,
        resume_from: str | None = None,
    ):
        super().__init__(record_transcript)
        if role not in topology.roles:
            raise ValueError(f"role {role!r} is not in the topology")
        if sock_timeout is not None and sock_timeout <= 0:
            raise ValueError("sock_timeout must be positive")
        self.role = role
        self.topology = topology
        self.local_parties = frozenset(topology.roles[role])
        self._ports = dict(ports)
        self._listener = listener
        self._listener.settimeout(_POLL_S)
        self._retry = retry or RetryPolicy()
        self._timeout = timeout
        self._close_timeout = close_timeout
        # Per-peer outbound fault schedules (this endpoint is the sender
        # side of each faulted direction); wrappers persist across
        # reconnects so the frame counter — and the remaining schedule —
        # survives the socket swap.
        self._fault_plans = dict(fault_plans or {})
        self._fault_socks: dict[str, FaultySocket] = {}
        # sock_timeout bounds a receiver's idle patience on fault-armed
        # links: after that much consecutive silence it NAKs its next
        # expected sequence number so tail-dropped frames get
        # retransmitted.  None (the default) keeps the infinite patience
        # that clean-link zero-counter ledgers are gated on.
        self._idle_nak_polls = (
            None
            if sock_timeout is None
            else max(1, int(sock_timeout / _POLL_S + 0.999))
        )
        self._idle_nak_peers = (
            None if idle_nak_peers is None else frozenset(idle_nak_peers)
        )
        # Per-role checkpoint path handed down by run_federation's
        # resume_from; programs read it to restore their local parties.
        self.resume_from = resume_from
        # Reconnect handoff: _admit deposits a redialled socket here for
        # the higher-named role's waiting reconnector (guarded by _grid).
        self._reconnect_pending: dict[str, socket.socket] = {}
        self._awaiting_reconnect: set[str] = set()
        self._wedged: list[str] = []
        # Link grid state, guarded by one condition: the authoritative
        # crossing-dial decision (accept vs refuse vs already-dialing) is
        # a single atomic check-and-mark under this lock.
        self._grid = threading.Condition()
        self._links: dict[str, ReliableLink] = {}
        self._dialing: set[str] = set()
        self._rx_threads: dict[str, threading.Thread] = {}
        # Mailbox: receiver threads deposit decoded messages per party;
        # recv() selects by tag because cross-sender arrival order is
        # scheduling-dependent (per-sender order stays FIFO).
        self._mail_cv = threading.Condition()
        self._mail: dict[str, deque[Message]] = {}
        self._rx_errors: list[tuple[str, str]] = []
        self._ledger_lock = threading.Lock()
        self._pending_frame: bytes | None = None
        self._sender: _PipelinedSender | None = None
        self._draining = False
        self._closing = False
        self._acceptor = threading.Thread(
            target=self._accept_loop, name=f"fabric-accept-{role}", daemon=True
        )
        self._acceptor.start()
        if pipeline:
            self.set_pipeline(True)

    # ------------------------------------------------------------- pipelining

    def set_pipeline(self, on: bool) -> None:
        """Toggle async sends.  Off (default) keeps sends blocking — the
        reference behaviour; on inserts the double-buffered sender thread.
        Turning it off drains every queued frame first, so the toggle is
        always safe at a protocol quiescence point."""
        if on and self._sender is None:
            self._sender = _PipelinedSender(self)
        elif not on and self._sender is not None:
            sender, self._sender = self._sender, None
            sender.stop()

    @property
    def pipelined(self) -> bool:
        return self._sender is not None

    # ------------------------------------------------------------- link grid

    def _register_link(self, peer_role: str, sock: socket.socket) -> None:
        # Callers hold self._grid.
        sock.settimeout(_POLL_S)
        link = ReliableLink(
            self._wrap_fault(peer_role, sock),
            retry=self._retry,
            reconnect=self._make_reconnect(peer_role),
        )
        self._links[peer_role] = link
        thread = threading.Thread(
            target=self._recv_loop,
            args=(peer_role, link),
            name=f"fabric-rx-{self.role}-{peer_role}",
            daemon=True,
        )
        self._rx_threads[peer_role] = thread
        thread.start()

    def _wrap_fault(self, peer_role: str, sock: socket.socket):
        """Wrap (or re-wrap) the socket toward ``peer_role`` in its fault
        schedule.  The wrapper is created once per peer and rebound across
        reconnects, so the DATA-frame counter keeps counting through the
        socket swap and later scheduled faults stay armed."""
        plan = self._fault_plans.get(peer_role)
        if plan is None:
            return sock
        wrapper = self._fault_socks.get(peer_role)
        if wrapper is None:
            wrapper = FaultySocket(sock, plan)
            self._fault_socks[peer_role] = wrapper
            return wrapper
        return wrapper.rebind(sock)

    def _idle_polls_for(self, peer_role: str) -> int | None:
        if self._idle_nak_polls is None:
            return None
        if (
            self._idle_nak_peers is not None
            and peer_role not in self._idle_nak_peers
        ):
            return None
        return self._idle_nak_polls

    def _make_reconnect(self, peer_role: str):
        """The per-link reconnector: redial or await the peer's redial.

        Reconnect direction is deterministic — the lower-named role of a
        pair redials (it holds the peer's listener port), the higher-named
        role waits for ``_admit`` to hand over the fresh socket.  Both
        sides re-run the hello handshake, then :class:`ReliableLink`'s
        recovery performs the RESUME exchange and replays unacked frames.
        """
        if self.role < peer_role:
            if peer_role not in self._ports:
                return None  # manually wired link: nothing to redial

            def _redial() -> socket.socket:
                fresh = socket.create_connection(
                    ("127.0.0.1", self._ports[peer_role]),
                    timeout=self._timeout,
                )
                try:
                    fresh.settimeout(min(self._timeout, 10.0))
                    fresh.sendall(codec.encode_hello(sorted(self.local_parties)))
                    acked_by = self._hello(fresh)  # the hello-ack
                    if acked_by != peer_role:
                        raise FatalTransportError(
                            f"redialled role {peer_role!r} but {acked_by!r} "
                            f"answered — mis-wired port map"
                        )
                except BaseException:
                    try:
                        fresh.close()
                    except OSError:
                        pass
                    raise
                fresh.settimeout(_POLL_S)
                return self._wrap_fault(peer_role, fresh)

            return _redial

        def _reaccept() -> socket.socket:
            # A redial that lands before this side noticed the link died
            # is refused by _admit like any crossing dial; the dialer's
            # seeded backoff retries until this flag is up.
            with self._grid:
                self._awaiting_reconnect.add(peer_role)
                for _ in range(_RECONNECT_WAIT_SLICES):
                    if peer_role in self._reconnect_pending or self._closing:
                        break
                    self._grid.wait(_POLL_S)
                fresh = self._reconnect_pending.pop(peer_role, None)
                if fresh is None:
                    raise TransportTimeout(
                        f"no redial from {peer_role!r} arrived within the "
                        f"reconnect window"
                    )
                self._awaiting_reconnect.discard(peer_role)
            fresh.settimeout(_POLL_S)
            return self._wrap_fault(peer_role, fresh)

        return _reaccept

    def _hello(self, sock: socket.socket) -> str:
        """Read the peer's hello and resolve it to a role in the topology."""
        frame = read_frame(sock)
        peer_parties, _keys = codec.decode_hello(frame, key_ring=self.key_ring)
        if not peer_parties:
            raise FatalTransportError("peer hello names no parties")
        peer_role = self.topology.home_of(peer_parties[0])
        if set(peer_parties) != set(self.topology.roles[peer_role]):
            raise FatalTransportError(
                f"peer hello claims parties {sorted(peer_parties)} but the "
                f"topology places {sorted(self.topology.roles[peer_role])} "
                f"at role {peer_role!r}"
            )
        if peer_role == self.role:
            raise FatalTransportError(
                f"endpoint {self.role!r} received its own role in a hello — "
                f"mis-wired port map"
            )
        return peer_role

    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                sock, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed: shutdown in progress
            try:
                self._admit(sock)
            except BaseException:
                try:
                    sock.close()
                except OSError:
                    pass
                if self._closing or self._draining:
                    return
                with self._mail_cv:
                    self._rx_errors.append((self.role, traceback.format_exc()))
                    self._mail_cv.notify_all()

    def _admit(self, sock: socket.socket) -> None:
        sock.settimeout(min(self._timeout, 10.0))
        peer_role = self._hello(sock)
        with self._grid:
            if (
                peer_role in self._links
                and peer_role in self._awaiting_reconnect
            ):
                # Link-death recovery: the lower-named peer redialled and
                # this side's reconnector is waiting for the handoff.
                # Complete the hello and deposit the fresh socket; a newer
                # redial supersedes any undelivered one.
                sock.sendall(codec.encode_hello(sorted(self.local_parties)))
                stale = self._reconnect_pending.pop(peer_role, None)
                if stale is not None:
                    try:
                        stale.close()
                    except OSError:
                        pass
                self._reconnect_pending[peer_role] = sock
                self._grid.notify_all()
                return
            if peer_role in self._links or (
                self.role < peer_role and peer_role in self._dialing
            ):
                # Crossing dial: this endpoint is the lower-named role of
                # the pair, so its own in-flight (or landed) dial is the
                # authoritative connection.  Closing without a hello-ack
                # tells the dialer to wait for ours instead.
                sock.close()
                return
            sock.sendall(codec.encode_hello(sorted(self.local_parties)))
            self._register_link(peer_role, sock)
            self._grid.notify_all()

    def _ensure_link(self, peer_role: str) -> ReliableLink:
        """The pair's link, dialling it on first use."""
        with self._grid:
            link = self._links.get(peer_role)
            if link is not None:
                return link
            if peer_role in self._dialing:
                return self._await_link(peer_role)
            self._dialing.add(peer_role)
        sock = None
        try:
            sock = socket.create_connection(
                ("127.0.0.1", self._ports[peer_role]), timeout=self._timeout
            )
            sock.settimeout(min(self._timeout, 10.0))
            sock.sendall(codec.encode_hello(sorted(self.local_parties)))
            acked_by = self._hello(sock)  # the hello-ack
            if acked_by != peer_role:
                raise FatalTransportError(
                    f"dialled role {peer_role!r} but {acked_by!r} answered — "
                    f"mis-wired port map"
                )
        except (RetryableTransportError, OSError):
            # The peer closed our dial without a hello-ack: on a crossing
            # dial the lower-named role refuses the non-authoritative
            # connection, and its own dial is already in flight — wait
            # for the acceptor to land it.  (A genuinely dead peer makes
            # the wait below time out instead.)
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass
            with self._grid:
                self._dialing.discard(peer_role)
                self._grid.notify_all()
            return self._await_link(peer_role)
        with self._grid:
            self._dialing.discard(peer_role)
            existing = self._links.get(peer_role)
            if existing is not None:
                # The acceptor landed the peer's dial while ours was in
                # flight; ours lost — use the registered link.
                try:
                    sock.close()
                except OSError:
                    pass
                self._grid.notify_all()
                return existing
            self._register_link(peer_role, sock)
            self._grid.notify_all()
            return self._links[peer_role]

    def _await_link(self, peer_role: str) -> ReliableLink:
        # repro: nondeterministic-ok link-establishment deadline — a
        # watchdog on connection setup, outside protocol state
        deadline = time.monotonic() + self._timeout
        with self._grid:
            while True:
                link = self._links.get(peer_role)
                if link is not None:
                    return link
                # repro: nondeterministic-ok link-establishment countdown
                remaining = deadline - time.monotonic()
                if remaining <= 0.0:
                    raise TransportTimeout(
                        f"no link between {self.role!r} and {peer_role!r} "
                        f"materialised within {self._timeout}s"
                    )
                self._grid.wait(min(_POLL_S, remaining))

    # ---------------------------------------------------------------- inbound

    def _recv_loop(self, peer_role: str, link: ReliableLink) -> None:
        try:
            while True:
                frame = link.recv_frame_idle(
                    lambda: self._closing,
                    recover_ok=lambda: not (self._closing or self._draining),
                    idle_nak_polls=self._idle_polls_for(peer_role),
                )
                if frame is None:
                    return  # clean stop
                msg = codec.decode_message(frame, key_ring=self.key_ring)
                self._account(msg)
                if self.record_transcript:
                    self.transcript.append(msg)
                with self._mail_cv:
                    self._mail.setdefault(msg.receiver, deque()).append(msg)
                    self._mail_cv.notify_all()
        except (TransportDisconnected, OSError):
            if self._closing or self._draining:
                return  # peer finished and left: nothing owed either way
            # The link already burnt its whole reconnect budget inside
            # recv_frame_idle; a FIN-less death that stays dead is a
            # vanished peer, named here so recv()/shutdown() fail with the
            # role instead of hanging until the protocol deadline.
            with self._mail_cv:
                self._rx_errors.append(
                    (
                        peer_role,
                        f"peer {peer_role!r} unreachable — reconnect budget "
                        f"spent without re-establishing the link\n"
                        f"{traceback.format_exc()}",
                    )
                )
                self._mail_cv.notify_all()
        except BaseException:
            with self._mail_cv:
                self._rx_errors.append((peer_role, traceback.format_exc()))
                self._mail_cv.notify_all()

    def _account(self, msg: Message) -> None:
        # Receiver threads and the protocol thread share the ledger.
        with self._ledger_lock:
            super()._account(msg)

    def _check_rx(self) -> None:
        # Callers hold self._mail_cv.
        if self._rx_errors:
            peer_role, tb = self._rx_errors[0]
            raise FatalTransportError(
                f"fabric receiver {self.role!r}<-{peer_role!r} failed:\n{tb}"
            )

    # ---------------------------------------------------------------- channel

    def _transcode(self, msg: Message) -> Message:
        if msg.sender not in self.local_parties:
            raise FatalTransportError(
                f"endpoint {self.role!r} cannot send for remote party "
                f"{msg.sender!r} — fabric endpoints do not mirror"
            )
        frame = codec.encode_message(msg)
        if msg.receiver in self.local_parties:
            # Co-located hop: serializing-tier semantics — the receiver
            # sees only what the bytes carry, nbytes is measured.
            return codec.decode_message(frame, key_ring=self.key_ring)
        msg.nbytes = len(frame)
        self._pending_frame = frame
        return msg

    def _deliver(self, msg: Message) -> None:
        if msg.receiver in self.local_parties:
            with self._mail_cv:
                self._mail.setdefault(msg.receiver, deque()).append(msg)
                self._mail_cv.notify_all()
            return
        frame, self._pending_frame = self._pending_frame, None
        peer_role = self.topology.home_of(msg.receiver)
        if self._sender is not None:
            self._sender.submit(peer_role, frame)
        else:
            self._send_to_peer(peer_role, frame)

    def _send_to_peer(self, peer_role: str, frame: bytes) -> None:
        try:
            self._ensure_link(peer_role).send_frame(frame)
        except TransportDisconnected as exc:
            # The link's bounded reconnect already ran and failed: the
            # peer is gone, and no amount of protocol-level retrying can
            # bring the frame stream back — fail with the role named.
            raise FatalTransportError(
                f"peer {peer_role!r} unreachable — reconnect budget spent "
                f"({exc})"
            ) from exc

    def recv(self, receiver: str, tag: str | None = None) -> object:
        if receiver not in self.local_parties:
            raise FatalTransportError(
                f"endpoint {self.role!r} cannot recv for remote party "
                f"{receiver!r} — fabric endpoints do not mirror"
            )
        # repro: nondeterministic-ok recv deadline — a watchdog against
        # peer death; the selected message is determined by tag, not time
        deadline = time.monotonic() + self._timeout
        with self._mail_cv:
            while True:
                self._check_rx()
                found = self._pop_mail(receiver, tag)
                if found is not None:
                    return found.payload
                # repro: nondeterministic-ok recv deadline countdown
                remaining = deadline - time.monotonic()
                if remaining <= 0.0:
                    raise TransportTimeout(
                        f"party {receiver!r} timed out after "
                        f"{self._timeout}s waiting for tag {tag!r}"
                    )
                self._mail_cv.wait(min(_POLL_S, remaining))

    def _pop_mail(self, receiver: str, tag: str | None) -> Message | None:
        # Callers hold self._mail_cv.  Tag-selective: frames from
        # different senders interleave nondeterministically, so the
        # protocol names the step it expects instead of trusting heads.
        box = self._mail.get(receiver)
        if not box:
            return None
        if tag is None:
            return box.popleft()
        for i, msg in enumerate(box):
            if msg.tag == tag:
                del box[i]
                return msg
        return None

    def pending(self, receiver: str) -> int:
        with self._mail_cv:
            box = self._mail.get(receiver)
            return len(box) if box else 0

    def link_stats(self) -> dict[str, dict]:
        """Final per-peer reliability ledgers (keyed by peer role)."""
        return {
            peer_role: link.stats.as_dict()
            for peer_role, link in sorted(self._links.items())
        }

    # --------------------------------------------------------------- shutdown

    def shutdown(self) -> None:
        """Drain the grid, verify the protocol completed, close everything.

        FIN is announced on every live link and the endpoint stays up —
        receiver threads keep servicing NAKs — until each peer's FIN
        covers everything received, so a slow peer can still recover its
        tail frames from us.  Leftover mailbox entries after the drain
        mean this endpoint's program under-consumed and fail loudly.
        """
        try:
            if self._sender is not None:
                self.set_pipeline(False)  # drains the queue in order
            self._draining = True
            for link in self._links.values():
                try:
                    link._send_fin()
                except (TransportError, OSError):
                    pass  # peer already gone: nothing left to protect
            # repro: nondeterministic-ok fin-drain deadline — close-time
            # watchdog; protocol state is already final here
            deadline = time.monotonic() + self._close_timeout
            while True:
                done = all(
                    link._peer_fin is not None
                    and link._peer_fin <= link.recv_seq
                    for link in self._links.values()
                )
                if done:
                    break
                # repro: nondeterministic-ok fin-drain countdown
                if time.monotonic() >= deadline:
                    break  # silent peer: close anyway, its driver reports
                time.sleep(0.01)
        finally:
            self._closing = True
            with self._grid:
                pending = list(self._reconnect_pending.values())
                self._reconnect_pending.clear()
                self._grid.notify_all()
            for sock in pending:
                try:
                    sock.close()
                except OSError:
                    pass
            for link in self._links.values():
                try:
                    link.sock.close()
                except OSError:
                    pass
            try:
                self._listener.close()
            except OSError:
                pass
            # A thread that outlives its join is a wedged receiver (or
            # acceptor) — record it loudly instead of returning as if the
            # endpoint wound down cleanly.
            wedged = []
            for peer_role, thread in self._rx_threads.items():
                thread.join(timeout=5.0)
                if thread.is_alive():
                    wedged.append(f"receiver {self.role!r}<-{peer_role!r}")
            self._acceptor.join(timeout=5.0)
            if self._acceptor.is_alive():
                wedged.append(f"acceptor {self.role!r}")
            self._wedged = wedged
        with self._mail_cv:
            self._check_rx()
            leftovers = {
                party: len(box) for party, box in self._mail.items() if box
            }
        if leftovers:
            raise FatalTransportError(
                f"protocol ended with undelivered messages pending for "
                f"{leftovers}"
            )
        if self._wedged:
            raise FatalTransportError(
                f"fabric shutdown left threads wedged past their 5s join: "
                f"{', '.join(self._wedged)}"
            )


# ---------------------------------------------------------------------------
# Federation driver: one child process per endpoint.


def _fabric_endpoint_main(
    role: str,
    topology: FabricTopology,
    program,
    args: tuple,
    port_report_queue,
    port_map_queue,
    result_queue,
    timeout: float,
    record_transcript: bool,
    retry: RetryPolicy | None,
    pipeline: bool,
    sock_timeout: float | None = None,
    fault_plans: dict[str, FaultPlan] | None = None,
    idle_nak_peers=None,
    resume_from: str | None = None,
) -> None:
    """Child-process entry: listen, learn the port map, run, report."""
    listener = None
    channel = None
    try:
        listener = socket.create_server(("127.0.0.1", 0))
        port_report_queue.put((role, listener.getsockname()[1]))
        ports = port_map_queue.get(timeout=timeout)
        channel = FabricChannel(
            role,
            topology,
            ports,
            listener,
            record_transcript=record_transcript,
            retry=retry,
            timeout=timeout,
            pipeline=pipeline,
            sock_timeout=sock_timeout,
            fault_plans=fault_plans,
            idle_nak_peers=idle_nak_peers,
            resume_from=resume_from,
        )
        result = program(channel, *args)
        channel.shutdown()
        result_queue.put((role, True, result, channel.link_stats()))
    except BaseException:
        result_queue.put((role, False, traceback.format_exc(), None))
    finally:
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass


def run_federation(
    program,
    args: tuple = (),
    *,
    roles: dict[str, tuple[str, ...]],
    mirror: bool | None = None,
    timeout: float = 120.0,
    record_transcript: bool = True,
    start_method: str | None = None,
    sock_timeout: float | None = None,
    retry: RetryPolicy | None = None,
    fault_plans: dict | None = None,
    pipeline: bool = False,
    resume_from: str | None = None,
) -> dict[str, object]:
    """Run ``program`` on one OS process per role and gather the results.

    ``roles`` maps each endpoint name to the tuple of parties it hosts
    (every party exactly once).  Returns the structured shape
    ``{"results": {role: value}, "link_stats": {role: ...}}``.

    Two execution models share this entry point:

    * ``mirror=True`` (default for exactly two roles): the lockstep
      mirrored tier of :mod:`repro.comm.transport` — both processes run
      the *same* program and verify each other's frames.
      ``fault_plans`` is keyed by role name and faults that endpoint's
      single outbound socket; ``link_stats[role]`` is that endpoint's
      single-link ledger.
    * ``mirror=False`` (default for three or more roles): the fabric —
      each process executes only its parties' protocol side over the
      lazily-dialled link grid, and ``link_stats[role]`` maps *peer
      roles* to per-link ledgers.  ``fault_plans`` addresses *directed
      links*: a ``(sender, receiver)`` key (role or party names) faults
      that one direction of the pair's duplex link, a bare role is
      shorthand for every outbound link of that endpoint (see
      :func:`repro.comm.faults.per_link_plans`).  ``sock_timeout``
      bounds receiver idle patience on fault-armed links (idle-NAK loss
      detection); clean links keep infinite patience so their ledgers
      stay at zero.  ``resume_from`` hands each endpoint the per-role
      checkpoint path ``f"{resume_from}.{role}"`` as
      ``channel.resume_from``, from which programs restore their local
      parties (see :func:`repro.core.trainer.train_multiparty`).
      ``pipeline`` pre-enables async sends on every endpoint (programs
      can also toggle ``channel.set_pipeline``).

    The program contract differs between the modes: mirrored programs
    are written as the full interleaved protocol, fabric programs must
    guard each actor's statements (``ctx.is_local``) — see
    :mod:`repro.core.multiparty`.
    """
    topology = FabricTopology(roles)
    if mirror is None:
        mirror = len(topology.roles) == 2
    if start_method is None:
        start_method = (
            "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        )
    mp = multiprocessing.get_context(start_method)
    result_queue = mp.Queue()

    if sock_timeout is not None and sock_timeout <= 0:
        raise ValueError("sock_timeout must be positive")

    if mirror:
        if len(topology.roles) != 2:
            raise ValueError(
                f"mirrored lockstep supports exactly two endpoints, got "
                f"{sorted(topology.roles)}; pass mirror=False for the fabric"
            )
        if resume_from is not None:
            raise ValueError(
                "resume_from is fabric-mode only: mirrored programs manage "
                "their own TrainConfig.checkpoint_path"
            )
        listener_role = (
            "host" if "host" in topology.roles else sorted(topology.roles)[0]
        )
        port_queue = mp.Queue()
        fault_plans = fault_plans or {}
        children = {
            role: mp.Process(
                target=_endpoint_main,
                args=(
                    role,
                    role == listener_role,
                    frozenset(parties),
                    program,
                    tuple(args),
                    port_queue,
                    result_queue,
                    timeout,
                    record_transcript,
                    sock_timeout,
                    retry,
                    fault_plans.get(role),
                ),
                daemon=True,
                name=f"blindfl-{role}",
            )
            for role, parties in topology.roles.items()
        }
    else:
        # Directed per-link fault plans: normalise the addressing, then
        # arm idle-NAK loss detection on exactly the links a plan touches
        # (either direction) — clean links keep their zero ledgers.
        link_plans: dict[str, dict[str, FaultPlan]] = {}
        idle_peers: dict[str, set[str]] = {role: set() for role in topology.roles}
        if fault_plans:
            aliases = {
                party: role
                for role, parties in topology.roles.items()
                for party in parties
            }
            link_plans = per_link_plans(fault_plans, topology.roles, aliases)
            for sender_role, links in link_plans.items():
                for receiver_role in links:
                    idle_peers[sender_role].add(receiver_role)
                    idle_peers[receiver_role].add(sender_role)
        port_report_queue = mp.Queue()
        port_map_queues = {role: mp.Queue() for role in topology.roles}
        children = {
            role: mp.Process(
                target=_fabric_endpoint_main,
                args=(
                    role,
                    topology,
                    program,
                    tuple(args),
                    port_report_queue,
                    port_map_queues[role],
                    result_queue,
                    timeout,
                    record_transcript,
                    retry,
                    pipeline,
                    sock_timeout,
                    link_plans.get(role),
                    frozenset(idle_peers[role]),
                    None if resume_from is None else f"{resume_from}.{role}",
                ),
                daemon=True,
                name=f"blindfl-{role}",
            )
            for role in topology.roles
        }

    for child in children.values():
        child.start()

    if not mirror:
        # Gather every endpoint's listening port, then broadcast the full
        # map — link establishment itself stays lazy (dial on first send).
        # The gather polls child liveness in short slices: an endpoint
        # that dies before reporting fails the grid immediately, with the
        # dead role named, instead of burning the whole timeout.
        ports: dict[str, int] = {}
        # repro: nondeterministic-ok port-gather deadline — a liveness
        # watchdog on federation startup, outside protocol state
        deadline = time.monotonic() + timeout
        while len(ports) < len(children):
            try:
                role, port = port_report_queue.get(timeout=_POLL_S)
                ports[role] = port
                continue
            except queue_mod.Empty:
                pass
            dead = {
                role: child.exitcode
                for role, child in children.items()
                if role not in ports and child.exitcode is not None
            }
            if dead:
                for child in children.values():
                    child.terminate()
                detail = ", ".join(
                    f"{role} (exit code {code})"
                    for role, code in sorted(dead.items())
                )
                raise FatalTransportError(
                    f"endpoint died before reporting a listening port: "
                    f"{detail}"
                )
            # repro: nondeterministic-ok port-gather countdown
            if time.monotonic() >= deadline:
                for child in children.values():
                    child.terminate()
                missing = sorted(set(children) - set(ports))
                raise FatalTransportError(
                    f"endpoints {missing} never reported a listening port"
                )
        for role_queue in port_map_queues.values():
            role_queue.put(ports)

    results, link_stats = _await_results(
        children, result_queue, timeout, what="federation run"
    )
    return {"results": results, "link_stats": link_stats}
