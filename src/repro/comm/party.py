"""Party state and federation context.

Per the paper's setup (§2.2): on initialisation each party generates its own
Paillier key pair and exchanges the *public* keys, so either party can
encrypt under the other's key while only the owner can decrypt.  Party B
additionally holds the labels.

:class:`VFLContext` bundles the parties, the shared channel and the protocol
configuration.  It supports the standard two-party setting and the
multi-party extension of Appendix C (several Party A's).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.comm.channel import CHANNEL_KINDS, Channel, make_channel
from repro.crypto.paillier import (
    DEFAULT_BLINDING_LAMBDA,
    DEFAULT_KEY_BITS,
    PaillierPrivateKey,
    PaillierPublicKey,
    generate_paillier_keypair,
)
from repro.utils.rng import spawn_rngs

__all__ = ["Party", "VFLConfig", "VFLContext"]


@dataclass
class VFLConfig:
    """Protocol-level knobs shared by all source layers.

    Attributes:
        key_bits: Paillier modulus size.  Tests default to short keys for
            speed; the paper's deployment uses 2048.
        mask_scale: magnitude of the uniform masks used by forward-pass
            HE2SS conversions.  Must dwarf the protected values (Figure 11).
        grad_mask_scale: mask magnitude for gradient sharing.  Each masked
            update randomly walks the weight *pieces* apart by ~lr * mask
            per step (the drift Figure 11 plots), so this is kept moderate
            while still dwarfing the actual gradient values.
        share_refresh: how Party A's cached ``[[V_A]]`` is refreshed after
            Party B updates its plaintext piece — ``"reencrypt"`` resends
            the full encrypted tensor (faithful to Figure 6),
            ``"delta"`` sends only the encrypted update for coordinates
            touched by the batch (the sparse-aware mode; see DESIGN.md §3).
        record_transcript: keep the full message transcript (the security
            tests need it; long benchmarks may disable it to save memory).
        channel: which in-process channel tier carries the protocol (see
            :mod:`repro.comm.channel`): ``"memory"`` passes live objects by
            reference, ``"serializing"`` round-trips every payload through
            the wire codec so the transcript is honest bytes and ``nbytes``
            is measured.  Both tiers produce bit-identical training
            trajectories.  The cross-process socket tier is not selected
            here — it needs a connected socket; pass a ready
            :class:`~repro.comm.transport.NetworkChannel` to
            :class:`VFLContext` instead.
        packing: SIMD-slot ciphertext batching (see
            :mod:`repro.crypto.packing`).  When on, weight pieces that are
            only ever used as ``plain @ cipher`` right operands are
            encrypted in packed form, and every HE2SS transfer packs
            ``slots`` values per ciphertext before hitting the wire —
            cutting ciphertext count, blinding exponentiations and wire
            bytes by the slot factor.  Keys too small to fit two slots
            fall back to per-element ciphertexts automatically.  Results
            decode bit-identically to the unpacked protocol (with
            ``share_refresh="delta"`` the refresh replaces touched rows
            instead of homomorphically adding deltas, so trajectories may
            differ by fixed-point rounding at 2**-40).
        blinding_lambda: statistical parameter of the λ-exponent blinding
            shortcut (see :data:`repro.crypto.paillier.
            DEFAULT_BLINDING_LAMBDA`).  Each party key precomputes one
            ``h = r0^n`` and draws obfuscation blinders as ``h^x`` for
            random λ-bit ``x`` — a λ-bit exponent per blinder instead of a
            ``key_bits``-bit one (~16x less pow bit-work at 2048-bit keys).
            ``0`` restores the classic fresh ``r^n`` per blinder.
    """

    key_bits: int = DEFAULT_KEY_BITS
    mask_scale: float = 2.0**16
    grad_mask_scale: float = 128.0
    share_refresh: str = "reencrypt"
    record_transcript: bool = True
    packing: bool = False
    channel: str = "memory"
    blinding_lambda: int = DEFAULT_BLINDING_LAMBDA

    def __post_init__(self) -> None:
        if self.share_refresh not in ("reencrypt", "delta"):
            raise ValueError("share_refresh must be 'reencrypt' or 'delta'")
        if self.channel not in CHANNEL_KINDS:
            raise ValueError(f"channel must be one of {CHANNEL_KINDS}")
        if self.blinding_lambda < 0:
            raise ValueError("blinding_lambda must be non-negative (0 = classic)")


@dataclass
class Party:
    """One participant: its keys, its RNG, and (for Party B) the labels."""

    name: str
    public_key: PaillierPublicKey
    # ``None`` on fabric endpoints that do not host this party: every
    # process derives the same seeded *public* keys, but only the party's
    # home endpoint retains decryption capability.
    private_key: PaillierPrivateKey | None
    rng: np.random.Generator
    peer_public_keys: dict[str, PaillierPublicKey] = field(default_factory=dict)

    def peer_key(self, peer_name: str) -> PaillierPublicKey:
        try:
            return self.peer_public_keys[peer_name]
        except KeyError:
            raise KeyError(
                f"party {self.name!r} has no public key for peer {peer_name!r}"
            ) from None


class VFLContext:
    """A federation: parties + channel + configuration.

    ``n_a_parties=1`` gives the standard two-party setting (Party "A" and
    Party "B"); larger values create parties "A1".."Am" for the Appendix C
    multi-party protocols.
    """

    def __init__(
        self,
        config: VFLConfig | None = None,
        seed: int = 0,
        n_a_parties: int = 1,
        channel: Channel | None = None,
        local_parties: frozenset[str] | set[str] | None = None,
    ):
        if n_a_parties < 1:
            raise ValueError("need at least one Party A")
        self.config = config or VFLConfig()
        # An explicit channel instance (e.g. a connected NetworkChannel)
        # overrides the config's in-process tier selection.
        if channel is None:
            channel = make_channel(
                self.config.channel,
                record_transcript=self.config.record_transcript,
            )
        self.channel = channel
        if n_a_parties == 1:
            a_names = ["A"]
        else:
            a_names = [f"A{i + 1}" for i in range(n_a_parties)]
        names = a_names + ["B"]
        # ``local_parties`` declares which parties this *process* hosts.
        # ``None`` (the default) means all of them — the single-process
        # simulation.  A non-mirrored fabric endpoint passes only its own
        # parties: every keypair is still derived from the same per-party
        # seeds (so public keys agree across endpoints), but the private
        # keys of remote parties are dropped on the floor — this endpoint
        # must never be able to decrypt traffic it merely relays.
        if local_parties is None:
            local = frozenset(names)
        else:
            local = frozenset(local_parties)
            unknown = local - set(names)
            if unknown:
                raise ValueError(
                    f"local_parties {sorted(unknown)} not in federation "
                    f"{names}"
                )
            if not local:
                raise ValueError("local_parties must name at least one party")
        self.local_parties = local
        rngs = spawn_rngs(seed, len(names))
        self.parties: dict[str, Party] = {}
        for offset, (name, rng) in enumerate(zip(names, rngs)):
            pk, sk = generate_paillier_keypair(
                self.config.key_bits,
                seed=seed * 7919 + offset,
                blinding_lambda=self.config.blinding_lambda,
            )
            self.parties[name] = Party(
                name=name,
                public_key=pk,
                private_key=sk if name in local else None,
                rng=rng,
            )
        # Exchange public keys (the one PUBLIC broadcast of initialisation).
        for party in self.parties.values():
            for other in self.parties.values():
                if other.name != party.name:
                    party.peer_public_keys[other.name] = other.public_key
        self.a_names = a_names
        self._register_keys(self.channel)

    def _register_keys(self, channel: Channel) -> None:
        """Register every party key with a channel's codec key ring.

        Serializing tiers resolve decoded payloads against these objects,
        so received tensors share the parties' seeded blinding RNGs and
        transcripts stay bit-reproducible across channel implementations.
        """
        for party in self.parties.values():
            channel.register_public_key(party.public_key)

    def set_channel(self, channel: Channel) -> None:
        """Swap the federation onto a different channel tier.

        Only legal at a protocol quiescence point: every queue of the old
        channel must be drained (layers hold no in-flight messages between
        training steps).  Transcript and byte counters start fresh on the
        new channel.
        """
        for name in self.parties:
            if self.channel.pending(name):
                raise RuntimeError(
                    f"cannot swap channels with undelivered messages for "
                    f"party {name!r}"
                )
        self._register_keys(channel)
        self.channel = channel

    def is_local(self, name: str) -> bool:
        """Whether this process hosts ``name`` (executes its protocol side)."""
        return name in self.local_parties

    @property
    def A(self) -> Party:
        return self.parties[self.a_names[0]]

    @property
    def B(self) -> Party:
        return self.parties["B"]

    def a_parties(self) -> list[Party]:
        return [self.parties[name] for name in self.a_names]
