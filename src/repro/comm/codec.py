"""Deterministic wire codec: every cross-party payload as honest bytes.

The in-memory :class:`~repro.comm.channel.Channel` passes live Python
objects by reference, which proves nothing about what actually crosses the
trust boundary.  This module is the single place where protocol payloads
become bytes — the *transcript a party receives* in the sense of the
ideal-real security analysis — and back.  Three properties are load-bearing:

* **Deterministic**: ``encode(x)`` is a pure function of the payload's
  public wire representation (``to_wire()`` on the crypto types), so golden
  transcripts and cross-process lockstep execution are byte-reproducible.
* **Complete**: every type that today crosses ``Channel.send`` has a frame
  — tensors of Paillier ciphertexts (per-element and SIMD-packed, with the
  full five-integer :class:`~repro.crypto.packing.SlotLayout` plus
  ``seg_cols`` in the header), bare ciphertexts, numpy arrays, public keys
  (handshake only) and plain Python scalars/containers.  Anything else
  raises :class:`UnsupportedWireType` loudly — an unknown object silently
  crossing the boundary is exactly the bug this module exists to prevent.
  ``PaillierPrivateKey`` (and any carrier exposing one, e.g. a ``Party``)
  is refused by name: there is deliberately *no* wire format for ``(p, q)``
  — private keys must never leave the key owner's process.
* **Non-leaky headers**: packed-tensor headers carry only canonicalised
  layout constants (see ``PackedCryptoTensor.wire_value_bits``); the
  security suite asserts header byte-equality across batches with different
  private magnitudes.

Frame layout (all integers big-endian)::

    preamble   magic   2  b"BF"
               version 1  WIRE_VERSION
               kind    1  frame kind: 0x4D message, 0x50 payload, 0x48 hello
               length  4  body bytes (the CRC trailer is not counted)
    body       ...        frame-kind specific
    trailer    crc32   4  CRC32 over preamble + body

Wire version 2 added the CRC32 trailer: a frame whose stored checksum
disagrees with its bytes raises :class:`FrameIntegrityError` (a classified
:class:`WireFormatError`) at the decode site — a flipped bit on a real link
is *detected* instead of decoding to garbage, and the transport's
retransmission sublayer can treat it as a retryable fault.

A *message* body is ``msg-kind(1) | seq(8) | sender | receiver | tag |
payload-blob`` with strings u16-length-prefixed UTF-8.  A *payload blob* is
``type(1) | header-length(4) | header | body``; the header holds all
structural metadata (key modulus, shapes, exponents, slot layout), the body
the raw fixed-width ciphertext residues or array buffer.  Ciphertext
residues live mod ``n**2`` and are written at the fixed width
``ceil(bitlen(n**2) / 8)`` — the honest wire cost ``payload_nbytes``
estimates.

Decoding resolves public keys through an optional ``key_ring`` (a mapping
``n -> PaillierPublicKey``): channels register their parties' key objects
so decoded tensors reference the *same* seeded key instances, keeping
blinding streams — and therefore whole ciphertext transcripts —
bit-reproducible across channel implementations.  Unknown moduli fall back
to fresh key objects, so decoding never requires prior key exchange.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np

from repro.comm.message import Message, MessageKind

__all__ = [
    "WIRE_MAGIC",
    "WIRE_VERSION",
    "PREAMBLE_SIZE",
    "CRC_SIZE",
    "FRAME_MESSAGE",
    "FRAME_PAYLOAD",
    "FRAME_HELLO",
    "WireFormatError",
    "FrameIntegrityError",
    "UnsupportedWireType",
    "encode_payload",
    "decode_payload",
    "split_payload",
    "encode_message",
    "decode_message",
    "encode_payload_frame",
    "decode_payload_frame",
    "encode_hello",
    "decode_hello",
    "parse_preamble",
    "check_frame",
    "iter_frames",
    "payload_summary",
    "message_summary",
]

WIRE_MAGIC = b"BF"
WIRE_VERSION = 2
PREAMBLE_SIZE = 8
CRC_SIZE = 4

# Frame kinds (the byte after the version).
FRAME_MESSAGE = 0x4D  # "M": a routed protocol message
FRAME_PAYLOAD = 0x50  # "P": a bare payload blob (tests, benchmarks)
FRAME_HELLO = 0x48  # "H": transport handshake

# Payload type codes.
T_NONE = 0x00
T_BOOL = 0x01
T_INT = 0x02
T_FLOAT = 0x03
T_STR = 0x04
T_BYTES = 0x05
T_LIST = 0x06
T_TUPLE = 0x07
T_NDARRAY = 0x10
T_PUBLIC_KEY = 0x20
T_ENCRYPTED_NUMBER = 0x21
T_CRYPTO_TENSOR = 0x22
T_PACKED_TENSOR = 0x23

_TYPE_NAMES = {
    T_NONE: "none",
    T_BOOL: "bool",
    T_INT: "int",
    T_FLOAT: "float",
    T_STR: "str",
    T_BYTES: "bytes",
    T_LIST: "list",
    T_TUPLE: "tuple",
    T_NDARRAY: "ndarray",
    T_PUBLIC_KEY: "public_key",
    T_ENCRYPTED_NUMBER: "encrypted_number",
    T_CRYPTO_TENSOR: "crypto_tensor",
    T_PACKED_TENSOR: "packed_crypto_tensor",
}


class WireFormatError(ValueError):
    """A frame is malformed, truncated, or from an unknown protocol version."""


class FrameIntegrityError(WireFormatError):
    """A frame's CRC32 trailer disagrees with its bytes — corruption in
    transit.  Classified separately from structural :class:`WireFormatError`
    so the transport's retransmission sublayer can treat it as retryable
    (ask the peer to resend) instead of a protocol bug."""


class UnsupportedWireType(TypeError):
    """A payload type has no wire representation — it must never be sent."""


def _crypto():
    """Crypto types, imported lazily (comm <-> crypto import order)."""
    global _CRYPTO
    if _CRYPTO is None:
        from repro.crypto.crypto_tensor import CryptoTensor
        from repro.crypto.packing import PackedCryptoTensor, SlotLayout
        from repro.crypto.paillier import (
            EncryptedNumber,
            PaillierPrivateKey,
            PaillierPublicKey,
        )

        _CRYPTO = (
            CryptoTensor, PackedCryptoTensor, SlotLayout,
            EncryptedNumber, PaillierPublicKey, PaillierPrivateKey,
        )
    return _CRYPTO


_CRYPTO = None


# ---------------------------------------------------------------------------
# Primitive writers/readers.


def _u8(x: int) -> bytes:
    return struct.pack(">B", x)


def _u16(x: int) -> bytes:
    return struct.pack(">H", x)


def _u32(x: int) -> bytes:
    return struct.pack(">I", x)


def _u64(x: int) -> bytes:
    return struct.pack(">Q", x)


def _i32(x: int) -> bytes:
    return struct.pack(">i", x)


def _str(s: str) -> bytes:
    raw = s.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise WireFormatError("string field exceeds the 64 KiB wire limit")
    return _u16(len(raw)) + raw


def _bigint(x: int) -> bytes:
    """Sign byte + u32 length + big-endian magnitude (arbitrary precision)."""
    x = int(x)
    sign = 1 if x < 0 else 0
    mag = abs(x)
    raw = mag.to_bytes((mag.bit_length() + 7) // 8 or 1, "big")
    return _u8(sign) + _u32(len(raw)) + raw


def _shape(shape: tuple[int, ...]) -> bytes:
    out = _u8(len(shape))
    for dim in shape:
        out += _u64(int(dim))
    return out


class _Reader:
    """Strict cursor over a byte buffer; every read is bounds-checked."""

    __slots__ = ("buf", "pos")

    def __init__(self, buf: bytes):
        self.buf = buf
        self.pos = 0

    def take(self, n: int) -> bytes:
        if n < 0 or self.pos + n > len(self.buf):
            raise WireFormatError(
                f"truncated frame: wanted {n} bytes at offset {self.pos}, "
                f"have {len(self.buf) - self.pos}"
            )
        out = self.buf[self.pos : self.pos + n]
        self.pos += n
        return out

    def u8(self) -> int:
        return self.take(1)[0]

    def u16(self) -> int:
        return struct.unpack(">H", self.take(2))[0]

    def u32(self) -> int:
        return struct.unpack(">I", self.take(4))[0]

    def u64(self) -> int:
        return struct.unpack(">Q", self.take(8))[0]

    def i32(self) -> int:
        return struct.unpack(">i", self.take(4))[0]

    def str(self) -> str:
        return self.take(self.u16()).decode("utf-8")

    def bigint(self) -> int:
        sign = self.u8()
        if sign not in (0, 1):
            raise WireFormatError(f"bad bigint sign byte {sign}")
        mag = int.from_bytes(self.take(self.u32()), "big")
        return -mag if sign else mag

    def shape(self) -> tuple[int, ...]:
        return tuple(self.u64() for _ in range(self.u8()))

    def done(self) -> None:
        if self.pos != len(self.buf):
            raise WireFormatError(
                f"{len(self.buf) - self.pos} trailing bytes after a complete frame"
            )


# ---------------------------------------------------------------------------
# Ciphertext residue batches: fixed width derived from the modulus.


def _residue_width(n: int) -> int:
    """Bytes per ciphertext residue mod ``n**2`` — the honest wire cost."""
    return ((n * n).bit_length() + 7) // 8


def _pack_residues(cts: list[int], width: int) -> bytes:
    out = bytearray(len(cts) * width)
    pos = 0
    for c in cts:
        out[pos : pos + width] = int(c).to_bytes(width, "big")
        pos += width
    return bytes(out)


def _unpack_residues(raw: bytes, width: int, count: int) -> list[int]:
    if len(raw) != width * count:
        raise WireFormatError(
            f"ciphertext body holds {len(raw)} bytes, expected {count} x {width}"
        )
    return [
        int.from_bytes(raw[i * width : (i + 1) * width], "big") for i in range(count)
    ]


def _resolve_key(n: int, key_ring: dict | None):
    """A PaillierPublicKey for modulus ``n``, reusing registered instances.

    Reuse matters beyond speed: the registered objects carry the parties'
    seeded blinding RNGs, so operating on decoded tensors draws the same
    obfuscation stream as operating on the originals — transcripts stay
    bit-reproducible across channel tiers.
    """
    if n <= 0:
        raise WireFormatError("public modulus on the wire must be positive")
    if key_ring is not None:
        key = key_ring.get(n)
        if key is not None:
            return key
    PaillierPublicKey = _crypto()[4]
    key = PaillierPublicKey.from_wire(n)
    if key_ring is not None:
        key_ring[n] = key
    return key


# ---------------------------------------------------------------------------
# Payload encoding.


def _encode_parts(payload: object) -> tuple[int, bytes, bytes]:
    """Lower a payload to ``(type_code, header, body)``."""
    (
        CryptoTensor, PackedCryptoTensor, _, EncryptedNumber,
        PaillierPublicKey, PaillierPrivateKey,
    ) = _crypto()
    if isinstance(payload, PaillierPrivateKey) or (
        isinstance(getattr(payload, "private_key", None), PaillierPrivateKey)
    ):
        # The custody boundary of the whole protocol: there is deliberately
        # no wire format for private-key material, because any party that
        # learns (p, q) can decrypt every ciphertext under the key.  Private
        # keys stay inside the key-owning process; parallel decryption ships
        # CRT constants only to that process's own pool children (see
        # repro.crypto.parallel), never through a Channel.
        raise UnsupportedWireType(
            f"refusing to serialise {type(payload).__name__}: Paillier "
            f"private-key material (p, q) must never leave the key owner's "
            f"process. Send the public key for encryption, or HE2SS shares "
            f"for values the peer needs in the clear."
        )
    if payload is None:
        return T_NONE, b"", b""
    if isinstance(payload, np.generic):
        # numpy scalars travel as 0-d arrays so the dtype survives exactly
        # (np.float64 subclasses float, so this must precede the float case).
        return _encode_ndarray(np.asarray(payload))
    if isinstance(payload, bool):  # before int: bool is an int subclass
        return T_BOOL, _u8(1 if payload else 0), b""
    if isinstance(payload, int):
        return T_INT, _bigint(payload), b""
    if isinstance(payload, float):
        return T_FLOAT, struct.pack(">d", payload), b""
    if isinstance(payload, str):
        return T_STR, b"", payload.encode("utf-8")
    if isinstance(payload, (bytes, bytearray)):
        return T_BYTES, b"", bytes(payload)
    if isinstance(payload, (list, tuple)):
        # Each item travels as a length-prefixed blob so containers nest
        # without any type-specific length arithmetic.
        blobs = [encode_payload(item) for item in payload]
        body = b"".join(_u32(len(blob)) + blob for blob in blobs)
        code = T_LIST if isinstance(payload, list) else T_TUPLE
        return code, _u32(len(payload)), body
    if isinstance(payload, np.ndarray):
        return _encode_ndarray(payload)
    if isinstance(payload, CryptoTensor):
        return _encode_crypto_tensor(payload)
    if isinstance(payload, PackedCryptoTensor):
        return _encode_packed_tensor(payload)
    if isinstance(payload, EncryptedNumber):
        n, ct, exponent = payload.to_wire()
        header = _bigint(n) + _i32(exponent)
        return T_ENCRYPTED_NUMBER, header, _pack_residues([ct], _residue_width(n))
    if isinstance(payload, PaillierPublicKey):
        return T_PUBLIC_KEY, _bigint(payload.to_wire()), b""
    raise UnsupportedWireType(
        f"no wire format for payload type {type(payload).__name__}; every "
        f"object crossing the party boundary must be byte-serialisable"
    )


def _encode_ndarray(arr: np.ndarray) -> tuple[int, bytes, bytes]:
    if arr.dtype == object:
        raise UnsupportedWireType("object-dtype arrays have no wire format")
    if arr.dtype.hasobject:
        raise UnsupportedWireType("structured arrays have no wire format")
    # Canonical little-endian, C-order buffer (asarray keeps 0-d shapes,
    # unlike ascontiguousarray which would promote them to 1-d).
    canonical = arr.dtype.newbyteorder("<") if arr.dtype.byteorder == ">" else arr.dtype
    data = np.asarray(arr, dtype=canonical, order="C")
    header = _str(data.dtype.str) + _shape(data.shape)
    return T_NDARRAY, header, data.tobytes()


def _decode_ndarray(header: _Reader, body: bytes) -> np.ndarray:
    dtype = np.dtype(header.str())
    shape = header.shape()
    size = int(np.prod(shape, dtype=np.int64)) if shape else 1
    if dtype.itemsize * size != len(body):
        raise WireFormatError(
            f"array body holds {len(body)} bytes, expected {size} x {dtype.itemsize}"
        )
    # bytearray keeps the decoded array writable without an extra copy.
    return np.frombuffer(bytearray(body), dtype=dtype).reshape(shape)


def _encode_crypto_tensor(tensor) -> tuple[int, bytes, bytes]:
    shape, cts, exponents = tensor.to_wire()
    n = tensor.public_key.n
    header = _bigint(n) + _shape(shape)
    if isinstance(exponents, int):
        header += _u8(1) + _i32(exponents)
    else:
        header += _u8(0) + b"".join(_i32(e) for e in exponents)
    return T_CRYPTO_TENSOR, header, _pack_residues(cts, _residue_width(n))


def _decode_crypto_tensor(header: _Reader, body: bytes, key_ring: dict | None):
    CryptoTensor = _crypto()[0]
    key = _resolve_key(header.bigint(), key_ring)
    shape = header.shape()
    size = int(np.prod(shape, dtype=np.int64)) if shape else 1
    uniform = header.u8()
    if uniform not in (0, 1):
        raise WireFormatError(f"bad exponent-uniformity flag {uniform}")
    exponents: int | list[int]
    if uniform:
        exponents = header.i32()
    else:
        exponents = [header.i32() for _ in range(size)]
    cts = _unpack_residues(body, _residue_width(key.n), size)
    return CryptoTensor.from_wire(key, shape, cts, exponents)


def _encode_packed_tensor(tensor) -> tuple[int, bytes, bytes]:
    wire = tensor.to_wire()
    n = tensor.public_key.n
    layout = wire["layout"]
    header = (
        _bigint(n)
        + _u32(layout[0])  # slot_bits
        + _u32(layout[1])  # slots
        + _u32(layout[2])  # key_bits
        + _u32(layout[3])  # base_value_bits
        + _u64(layout[4])  # acc_depth
        + _u8(1 if wire["contiguous"] else 0)
        + _u32(wire["seg_cols"])
        + _shape(wire["shape"])
        + _i32(wire["exponent"])
        + _u32(wire["value_bits"])
        + _u32(len(wire["cts"]))
    )
    return T_PACKED_TENSOR, header, _pack_residues(wire["cts"], _residue_width(n))


def _decode_packed_tensor(header: _Reader, body: bytes, key_ring: dict | None):
    PackedCryptoTensor, SlotLayout = _crypto()[1], _crypto()[2]
    key = _resolve_key(header.bigint(), key_ring)
    layout = SlotLayout.from_wire(
        (header.u32(), header.u32(), header.u32(), header.u32(), header.u64())
    )
    contiguous = header.u8()
    if contiguous not in (0, 1):
        raise WireFormatError(f"bad contiguity flag {contiguous}")
    seg_cols = header.u32()
    shape = header.shape()
    exponent = header.i32()
    value_bits = header.u32()
    count = header.u32()
    cts = _unpack_residues(body, _residue_width(key.n), count)
    return PackedCryptoTensor.from_wire(
        key,
        layout,
        cts,
        shape,
        exponent,
        value_bits,
        contiguous=bool(contiguous),
        seg_cols=seg_cols or None,
    )


def encode_payload(payload: object) -> bytes:
    """Serialise one payload to a self-describing blob (no preamble)."""
    code, header, body = _encode_parts(payload)
    return _u8(code) + _u32(len(header)) + header + body


def split_payload(blob: bytes) -> tuple[int, bytes, bytes]:
    """Split a payload blob into ``(type_code, header, body)``.

    The header holds every piece of structural metadata the receiver needs
    before touching ciphertext bytes — it is the part the wire-leakage
    tests pin, and the part a network stack could route on.
    """
    reader = _Reader(blob)
    code = reader.u8()
    if code not in _TYPE_NAMES:
        raise WireFormatError(f"unknown payload type code 0x{code:02x}")
    header = reader.take(reader.u32())
    body = reader.take(len(blob) - reader.pos)
    return code, header, body


def decode_payload(blob: bytes, key_ring: dict | None = None) -> object:
    """Inverse of :func:`encode_payload`; strict about every byte."""
    code, header_bytes, body = split_payload(blob)
    header = _Reader(header_bytes)
    payload = _decode_typed(code, header, body, key_ring)
    header.done()
    return payload


def _decode_typed(code: int, header: _Reader, body: bytes, key_ring: dict | None):
    if code == T_NONE:
        return None
    if code == T_BOOL:
        flag = header.u8()
        if flag not in (0, 1):
            raise WireFormatError(f"bad bool byte {flag}")
        return bool(flag)
    if code == T_INT:
        return header.bigint()
    if code == T_FLOAT:
        return struct.unpack(">d", header.take(8))[0]
    if code == T_STR:
        return body.decode("utf-8")
    if code == T_BYTES:
        return bytes(body)
    if code in (T_LIST, T_TUPLE):
        count = header.u32()
        items = []
        reader = _Reader(body)
        for _ in range(count):
            items.append(decode_payload(reader.take(reader.u32()), key_ring))
        reader.done()
        return items if code == T_LIST else tuple(items)
    if code == T_NDARRAY:
        return _decode_ndarray(header, body)
    if code == T_CRYPTO_TENSOR:
        return _decode_crypto_tensor(header, body, key_ring)
    if code == T_PACKED_TENSOR:
        return _decode_packed_tensor(header, body, key_ring)
    if code == T_ENCRYPTED_NUMBER:
        EncryptedNumber = _crypto()[3]
        key = _resolve_key(header.bigint(), key_ring)
        exponent = header.i32()
        (ct,) = _unpack_residues(body, _residue_width(key.n), 1)
        return EncryptedNumber.from_wire(key, ct, exponent)
    if code == T_PUBLIC_KEY:
        return _resolve_key(header.bigint(), key_ring)
    raise WireFormatError(f"unknown payload type code 0x{code:02x}")


# ---------------------------------------------------------------------------
# Frames: preamble + typed body.


def _frame(kind: int, body: bytes) -> bytes:
    head = WIRE_MAGIC + bytes((WIRE_VERSION, kind)) + _u32(len(body)) + body
    return head + _u32(zlib.crc32(head) & 0xFFFFFFFF)


def parse_preamble(preamble: bytes) -> tuple[int, int]:
    """Validate an 8-byte preamble; returns ``(frame_kind, body_length)``.

    ``body_length`` excludes the :data:`CRC_SIZE`-byte trailer, so a full
    frame occupies ``PREAMBLE_SIZE + body_length + CRC_SIZE`` bytes.
    """
    if len(preamble) != PREAMBLE_SIZE:
        raise WireFormatError(f"preamble must be {PREAMBLE_SIZE} bytes")
    if preamble[:2] != WIRE_MAGIC:
        raise WireFormatError(f"bad magic {preamble[:2]!r}; not a BlindFL frame")
    version = preamble[2]
    if version != WIRE_VERSION:
        raise WireFormatError(
            f"wire version {version} not supported (speaking {WIRE_VERSION})"
        )
    kind = preamble[3]
    if kind not in (FRAME_MESSAGE, FRAME_PAYLOAD, FRAME_HELLO):
        raise WireFormatError(f"unknown frame kind 0x{kind:02x}")
    return kind, struct.unpack(">I", preamble[4:8])[0]


def check_frame(frame: bytes, expect_kind: int | None = None) -> tuple[int, bytes]:
    """Validate one complete frame; returns ``(frame_kind, body)``.

    Checks the preamble, the length field against the actual byte count,
    and the CRC32 trailer against the preamble + body.  Integrity failures
    raise :class:`FrameIntegrityError`; structural ones, the base
    :class:`WireFormatError`.
    """
    kind, length = parse_preamble(frame[:PREAMBLE_SIZE])
    if len(frame) != PREAMBLE_SIZE + length + CRC_SIZE:
        raise WireFormatError(
            f"frame length field says {length} body bytes (+{CRC_SIZE} CRC), "
            f"have {len(frame) - PREAMBLE_SIZE}"
        )
    stored = struct.unpack(">I", frame[-CRC_SIZE:])[0]
    actual = zlib.crc32(frame[:-CRC_SIZE]) & 0xFFFFFFFF
    if stored != actual:
        raise FrameIntegrityError(
            f"frame failed its CRC32 integrity check (stored 0x{stored:08x}, "
            f"computed 0x{actual:08x}) — corrupted in transit"
        )
    if expect_kind is not None and kind != expect_kind:
        raise WireFormatError(
            f"expected frame kind 0x{expect_kind:02x}, got 0x{kind:02x}"
        )
    return kind, frame[PREAMBLE_SIZE:-CRC_SIZE]


def iter_frames(data: bytes):
    """Yield ``(frame_kind, body)`` for each frame in a concatenated stream.

    Every frame is CRC-validated; a truncated tail or corrupted frame
    raises rather than yielding partial data.  This is the reader for
    checkpoint files, which are plain concatenations of payload frames.
    """
    pos = 0
    while pos < len(data):
        if pos + PREAMBLE_SIZE > len(data):
            raise WireFormatError(
                f"truncated frame stream: {len(data) - pos} bytes of preamble"
            )
        _, length = parse_preamble(data[pos : pos + PREAMBLE_SIZE])
        end = pos + PREAMBLE_SIZE + length + CRC_SIZE
        if end > len(data):
            raise WireFormatError(
                f"truncated frame stream: frame at offset {pos} wants "
                f"{end - pos} bytes, have {len(data) - pos}"
            )
        yield check_frame(data[pos:end])
        pos = end


def encode_message(msg: Message) -> bytes:
    """Serialise a routed protocol message to one framed byte string."""
    body = (
        _u8(msg.kind.wire_code)
        + _u64(msg.seq)
        + _str(msg.sender)
        + _str(msg.receiver)
        + _str(msg.tag)
        + encode_payload(msg.payload)
    )
    return _frame(FRAME_MESSAGE, body)


def decode_message(frame: bytes, key_ring: dict | None = None) -> Message:
    """Inverse of :func:`encode_message`.

    The returned message's ``nbytes`` is the *measured* frame length — what
    actually crossed (or would cross) the wire, not an estimate.
    """
    kind_code, length = parse_preamble(frame[:PREAMBLE_SIZE])
    if kind_code != FRAME_MESSAGE:
        raise WireFormatError("frame is not a protocol message")
    _, body = check_frame(frame)
    reader = _Reader(body)
    kind = MessageKind.from_wire(reader.u8())
    seq = reader.u64()
    sender = reader.str()
    receiver = reader.str()
    tag = reader.str()
    payload = decode_payload(reader.take(len(reader.buf) - reader.pos), key_ring)
    return Message(
        sender=sender,
        receiver=receiver,
        tag=tag,
        kind=kind,
        payload=payload,
        nbytes=len(frame),
        seq=seq,
    )


def encode_payload_frame(payload: object) -> bytes:
    """Serialise one bare payload as a complete CRC-trailed frame.

    This is the persistence format for checkpoint sections: each section is
    one ``FRAME_PAYLOAD`` frame, so a checkpoint file inherits the wire
    codec's integrity checking and its custody refusals (no frame exists
    for private-key material) for free.
    """
    return _frame(FRAME_PAYLOAD, encode_payload(payload))


def decode_payload_frame(frame: bytes, key_ring: dict | None = None) -> object:
    """Inverse of :func:`encode_payload_frame` (CRC-validated)."""
    kind_code, _ = parse_preamble(frame[:PREAMBLE_SIZE])
    if kind_code != FRAME_PAYLOAD:
        raise WireFormatError("frame is not a bare payload")
    _, body = check_frame(frame)
    return decode_payload(body, key_ring)


def encode_hello(parties: list[str], public_keys: list | None = None) -> bytes:
    """Transport handshake: version check + party-ownership declaration."""
    keys = list(public_keys or [])
    return _frame(
        FRAME_HELLO, encode_payload(("blindfl-wire", sorted(parties), keys))
    )


def decode_hello(frame: bytes, key_ring: dict | None = None) -> tuple[list[str], list]:
    kind_code, _ = parse_preamble(frame[:PREAMBLE_SIZE])
    if kind_code != FRAME_HELLO:
        raise WireFormatError("frame is not a handshake hello")
    _, body = check_frame(frame)
    proto, parties, keys = decode_payload(body, key_ring)
    if proto != "blindfl-wire":
        raise WireFormatError(f"handshake names unknown protocol {proto!r}")
    return list(parties), list(keys)


# ---------------------------------------------------------------------------
# Summaries: the protocol-conformance view of a transcript (golden tests).


def payload_summary(payload: object) -> dict:
    """Structural summary of a payload's wire header — no ciphertext bytes.

    This is the record the protocol-conformance golden tests pin: it
    captures everything a future refactor could silently change about the
    wire (types, shapes, exponents, slot layouts) while staying independent
    of the ciphertext randomness.
    """
    (
        CryptoTensor, PackedCryptoTensor, _, EncryptedNumber,
        PaillierPublicKey, _private,
    ) = _crypto()
    if isinstance(payload, CryptoTensor):
        shape, cts, exponents = payload.to_wire()
        return {
            "type": "crypto_tensor",
            "key_bits": payload.public_key.key_bits,
            "shape": list(shape),
            "exponent": exponents if isinstance(exponents, int) else "mixed",
            "n_cts": len(cts),
        }
    if isinstance(payload, PackedCryptoTensor):
        wire = payload.to_wire()
        return {
            "type": "packed_crypto_tensor",
            "key_bits": payload.public_key.key_bits,
            "layout": list(wire["layout"]),
            "contiguous": wire["contiguous"],
            "seg_cols": wire["seg_cols"],
            "shape": list(wire["shape"]),
            "exponent": wire["exponent"],
            "value_bits": wire["value_bits"],
            "n_cts": len(wire["cts"]),
        }
    if isinstance(payload, EncryptedNumber):
        return {
            "type": "encrypted_number",
            "key_bits": payload.public_key.key_bits,
            "exponent": payload.exponent,
        }
    if isinstance(payload, PaillierPublicKey):
        return {"type": "public_key", "key_bits": payload.key_bits}
    if isinstance(payload, np.ndarray):
        return {
            "type": "ndarray",
            "dtype": np.dtype(payload.dtype).str,
            "shape": list(payload.shape),
        }
    if isinstance(payload, (list, tuple)):
        return {
            "type": "list" if isinstance(payload, list) else "tuple",
            "items": [payload_summary(item) for item in payload],
        }
    return {"type": type(payload).__name__}


def message_summary(msg: Message) -> dict:
    """Conformance record of one transcript message (golden-test row)."""
    frame = encode_message(msg)
    return {
        "seq": msg.seq,
        "sender": msg.sender,
        "receiver": msg.receiver,
        "tag": msg.tag,
        "kind": msg.kind.value,
        "nbytes": len(frame),
        "payload": payload_summary(msg.payload),
    }
