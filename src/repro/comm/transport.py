"""Cross-process socket transport: parties in separate PIDs, bytes on a wire.

This is the third channel tier (see :mod:`repro.comm.channel`): a
:class:`NetworkChannel` carries protocol frames over a real TCP connection
between two OS processes, so the only thing that ever crosses the trust
boundary is what the wire codec can express as bytes.

Execution model — deterministic lockstep mirroring
--------------------------------------------------
The protocol layers are written as a single interleaved control flow that
performs *both* parties' steps (the in-process fidelity trick the seed repo
started from).  The socket tier keeps that code unchanged by running the
**same seeded program in both processes** and splitting *ownership*:

* each endpoint owns a subset of parties (``local_parties``);
* a ``send`` whose receiver is **remote** writes the encoded frame to the
  socket, and also delivers the locally *decoded* copy so the mirrored
  simulation of the remote party continues — from exactly the bytes the
  real remote receives;
* a ``send`` whose receiver is **local** transmits nothing (the peer's
  mirror performs the real transmission) and instead records what frame the
  wire must produce next;
* a ``recv`` for a **local** party blocks on the socket, decodes the
  incoming frame, and verifies it against that recorded expectation —
  sender, receiver, tag, kind, sequence number and frame length must all
  match, otherwise the endpoints desynchronised and we fail loudly.

Because every RNG in the federation is seeded (party RNGs, key generation,
blinding pools), the two mirrored processes draw identical randomness, so a
local party's state is *driven entirely by decoded wire bytes* while
remaining bit-identical to a single-process run — which is precisely the
protocol-conformance property the test-suite pins: byte-real transport with
zero protocol drift.

Reliable delivery — the link sublayer
-------------------------------------
Codec frames do not touch the socket directly: :class:`ReliableLink` wraps
each one in a small link envelope ``BL | type | seq | ack | length |
payload | crc32`` and implements receiver-driven ARQ on top:

* every DATA envelope carries the sender's next sequence number and a
  *piggybacked* cumulative ack of everything delivered in order so far —
  on a clean link the reliability layer adds **zero extra frames**;
* sent frames stay in a bounded resend buffer until the peer's acks prune
  them;
* the receiver always knows which frame it expects next (lockstep
  mirroring), so a CRC-corrupted envelope or a sequence gap triggers an
  immediate NAK, and a read timeout triggers NAK + exponential backoff
  with seeded jitter (:class:`RetryPolicy`) — the sender replays the
  requested frames from its buffer, and duplicates (a replayed frame that
  did arrive, or an injected duplicate) are discarded by sequence number;
* a dropped connection is *retryable* when a ``reconnect`` callable is
  configured: the endpoint re-establishes the socket, re-runs the hello
  handshake, exchanges RESUME envelopes carrying each side's delivery
  watermark, and replays every buffered frame above the peer's watermark —
  training continues bit-identically through a mid-epoch disconnect.

Errors are classified: :class:`RetryableTransportError` (timeouts, drops,
corruption — the link retries these itself and only surfaces them once the
retry budget is spent) versus :class:`FatalTransportError` (mirror
divergence, ownership overlap, link desync — retrying cannot help).  Both
subclass :class:`TransportError`, which existing callers catch.

Deadlock safety: every socket read honours a hard ``timeout``, and the
:func:`run_two_party` driver enforces an overall deadline and *polls child
liveness* — a crashed endpoint fails the run as soon as its death is
observed instead of burning the full deadline.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
import random
import socket
import struct
import threading
import time
import traceback
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.comm import codec
from repro.comm.channel import CodecChannel
from repro.comm.message import Message
from repro.obs import tracer as _obs

__all__ = [
    "TransportError",
    "RetryableTransportError",
    "FatalTransportError",
    "TransportTimeout",
    "TransportDisconnected",
    "LinkCorruptionError",
    "RetryPolicy",
    "LinkStats",
    "ReliableLink",
    "NetworkChannel",
    "TwoPartyResult",
    "read_frame",
    "run_two_party",
]


class TransportError(RuntimeError):
    """Socket-level failure: timeout, truncated frame, or peer desync."""


class RetryableTransportError(TransportError):
    """A transient fault (timeout, drop, corruption, disconnect).

    The link layer handles these internally — retransmission, backoff,
    reconnect — and only lets one escape once the retry budget is spent.
    """


class FatalTransportError(TransportError):
    """A non-transient failure: protocol desync, ownership overlap, or
    link-layer framing loss.  Retrying cannot help; the run must abort."""


class TransportTimeout(RetryableTransportError):
    """No frame arrived within the socket timeout."""


class TransportDisconnected(RetryableTransportError):
    """The connection dropped mid-run (EOF, reset, or injected)."""


class LinkCorruptionError(RetryableTransportError):
    """A link envelope failed its CRC — corrupted in transit."""


# ---------------------------------------------------------------------------
# Link envelope: the ARQ sublayer's unit of transmission.
#
#   magic   2  b"BL"
#   type    1  0x44 DATA | 0x4E NAK | 0x52 RESUME
#   seq     8  DATA: this frame's sequence number (1-based)
#              NAK: first sequence number the receiver is missing
#              RESUME: sender's highest assigned sequence number
#   ack     8  cumulative ack: highest seq delivered in order by the sender
#   length  4  payload length (the codec frame; 0 for control envelopes)
#   payload ...
#   crc32   4  over everything above

ENV_MAGIC = b"BL"
ENV_DATA = 0x44
ENV_NAK = 0x4E
ENV_RESUME = 0x52
ENV_FIN = 0x46
ENV_HEADER_SIZE = 23
ENV_OVERHEAD = ENV_HEADER_SIZE + 4


def encode_envelope(etype: int, seq: int, ack: int, payload: bytes = b"") -> bytes:
    head = (
        ENV_MAGIC
        + bytes((etype,))
        + struct.pack(">QQI", seq, ack, len(payload))
        + payload
    )
    import zlib

    return head + struct.pack(">I", zlib.crc32(head) & 0xFFFFFFFF)


def is_data_envelope(data: bytes) -> bool:
    """True when ``data`` is a DATA link envelope (the fault-injection
    target: control envelopes and bare handshake frames are never faulted,
    so injected faults stay frame-granular and deterministic)."""
    return len(data) >= 3 and data[:2] == ENV_MAGIC and data[2] == ENV_DATA


@dataclass
class RetryPolicy:
    """Bounded retransmission: exponential backoff with seeded jitter.

    ``delays()`` yields ``max_retries`` sleep intervals, doubling from
    ``base_delay`` up to ``max_delay``, each scaled by a deterministic
    jitter in ``[1, 1 + jitter)`` drawn from ``random.Random(seed)`` — so
    two mirrored endpoints (different seeds) desynchronise their retries,
    while a re-run of the same test reproduces the exact timing decisions.
    """

    max_retries: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.25
    seed: int = 0

    def delays(self):
        rng = random.Random(self.seed)
        for attempt in range(self.max_retries):
            delay = min(self.max_delay, self.base_delay * (2.0**attempt))
            yield delay * (1.0 + self.jitter * rng.random())


@dataclass
class LinkStats:
    """Counters for the reliability layer (the bench gate reads these).

    On a clean link every counter except ``data_sent``/``data_received``
    and ``envelope_bytes`` must stay zero: acks piggyback on DATA, so the
    reliability layer is free apart from the fixed per-frame envelope.
    """

    data_sent: int = 0
    data_received: int = 0
    retransmits: int = 0
    naks_sent: int = 0
    naks_received: int = 0
    duplicates_dropped: int = 0
    corrupt_dropped: int = 0
    timeouts: int = 0
    reconnects: int = 0
    resumes: int = 0
    fins: int = 0
    envelope_bytes: int = 0
    resend_highwater: int = 0

    def extra_frames(self) -> int:
        """Frames beyond the one-envelope-per-codec-frame minimum."""
        return self.retransmits + self.naks_sent + self.resumes

    def as_dict(self) -> dict:
        return dict(self.__dict__)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    buf = bytearray()
    while len(buf) < n:
        try:
            chunk = sock.recv(n - len(buf))
        except socket.timeout:
            raise TransportTimeout(
                "timed out waiting for a frame — protocol deadlock or a "
                "crashed peer"
            ) from None
        except OSError as exc:
            raise TransportDisconnected(
                f"connection lost mid-frame ({exc})"
            ) from None
        if not chunk:
            raise TransportDisconnected("peer closed the connection mid-frame")
        buf += chunk
    return bytes(buf)


def read_frame(sock: socket.socket) -> bytes:
    """Read one complete *bare* codec frame from a socket, CRC-verified.

    Used for the hello handshake (which runs below the ARQ sublayer) and
    by tools that speak raw frames.  A corrupted frame raises
    :class:`~repro.comm.codec.FrameIntegrityError` here — at the read
    site — rather than decoding garbage downstream.
    """
    preamble = _recv_exact(sock, codec.PREAMBLE_SIZE)
    _, length = codec.parse_preamble(preamble)
    frame = preamble + _recv_exact(sock, length + codec.CRC_SIZE)
    codec.check_frame(frame)
    return frame


class ReliableLink:
    """Acked, retransmitting frame pipe over one (replaceable) socket.

    ``reconnect`` (optional) returns a fresh connected socket after a drop;
    ``on_reconnect`` (optional) runs protocol re-handshakes on the new
    socket before the RESUME exchange.  Without a reconnector, a drop is
    surfaced as :class:`TransportDisconnected` after the retry budget.
    """

    def __init__(
        self,
        sock: socket.socket,
        *,
        retry: RetryPolicy | None = None,
        reconnect=None,
        on_reconnect=None,
        resend_capacity: int = 512,
        graceful_close: bool = False,
    ):
        self.sock = sock
        # Socket generation: bumped under the lock on every successful
        # reconnect.  A thread that observed a failure on generation N
        # passes N into _recover_connection; if another thread already
        # swapped in generation N+1, the stale recovery is a no-op
        # instead of tearing down the fresh socket.
        self.sock_gen = 0
        self.retry = retry or RetryPolicy()
        self.reconnect = reconnect
        self.on_reconnect = on_reconnect
        self.resend_capacity = resend_capacity
        self.graceful_close = graceful_close
        self.stats = LinkStats()
        self.send_seq = 0  # last sequence number assigned to a sent frame
        self.recv_seq = 0  # highest seq delivered in order to the channel
        self.peer_ack = 0  # highest cumulative ack received from the peer
        self._peer_fin: int | None = None  # peer's announced final watermark
        self._resend: OrderedDict[int, bytes] = OrderedDict()
        # Serialises every outbound write and the send-side bookkeeping
        # (resend buffer, ack watermark): the fabric drives one link from
        # a protocol/sender thread *and* a receiver thread (whose NAK
        # handling retransmits), so envelopes must never interleave
        # mid-write.  Reentrant because send paths nest (send_frame ->
        # _send_env, _retransmit_from -> _send_env).
        self._lock = threading.RLock()

    def _count(self, stat: str, n: int = 1) -> None:
        """Bump a LinkStats counter and its traced ``link.<name>`` mirror.

        Routing every counter (except the ``resend_highwater`` gauge)
        through this one helper makes the trace reconcile with
        ``stats.as_dict()`` by construction.
        """
        setattr(self.stats, stat, getattr(self.stats, stat) + n)
        trc = _obs.get_tracer()
        if trc is not None:
            trc.add("link." + stat, n)

    # ------------------------------------------------------------------ send

    def send_frame(self, frame: bytes) -> None:
        """Transmit one codec frame with at-least-once delivery."""
        with self._lock:
            self.send_seq += 1
            self._resend[self.send_seq] = frame
            self.stats.resend_highwater = max(
                self.stats.resend_highwater, len(self._resend)
            )
            self._prune_resend()
            env = encode_envelope(ENV_DATA, self.send_seq, self.recv_seq, frame)
            self._count("data_sent")
            self._send_env(env, replayable=True)

    def _send_env(self, env: bytes, replayable: bool = False) -> None:
        with self._lock:
            try:
                self.sock.sendall(env)
                self._count("envelope_bytes", ENV_OVERHEAD)
            except socket.timeout:
                raise TransportTimeout(
                    "timed out writing a frame — peer stopped draining the "
                    "link"
                ) from None
            except OSError as exc:
                # A DATA envelope is already in the resend buffer: the
                # RESUME replay after reconnect retransmits it, so nothing
                # is lost.  Control envelopes are regenerated by their send
                # sites.
                self._recover_connection(exc)
                if not replayable:
                    return

    def _prune_resend(self) -> None:
        while self._resend and next(iter(self._resend)) <= self.peer_ack:
            self._resend.popitem(last=False)
        # The capacity bound is soft: unacked frames are never evicted
        # (they may still be NAKed), but the high-water mark records any
        # excursion so tests can pin the bound on clean runs.

    def _note_ack(self, ack: int) -> None:
        with self._lock:
            if ack > self.peer_ack:
                self.peer_ack = ack
                self._prune_resend()

    # ------------------------------------------------------------------ recv

    def recv_frame(self) -> bytes:
        """Deliver the next in-order codec frame, retrying through faults."""
        delays = self.retry.delays()
        while True:
            try:
                etype, seq, ack, payload = self._read_envelope()
            except LinkCorruptionError:
                # Corruption is detected immediately — NAK the frame we
                # are missing rather than waiting for a timeout.
                self._count("corrupt_dropped")
                self._send_nak()
                continue
            except TransportTimeout:
                self._count("timeouts")
                try:
                    delay = next(delays)
                except StopIteration:
                    raise TransportTimeout(
                        "timed out waiting for a frame — protocol deadlock "
                        "or a crashed peer (retry budget spent)"
                    ) from None
                self._send_nak()
                time.sleep(delay)
                continue
            except TransportDisconnected as exc:
                self._recover_connection(exc)
                continue
            self._note_ack(ack)
            if etype == ENV_NAK:
                self._count("naks_received")
                self._retransmit_from(seq)
                continue
            if etype == ENV_RESUME:
                # Peer reconnected and announced its watermark mid-stream.
                self._replay_unacked()
                continue
            if etype == ENV_FIN:
                # Peer's program finished and it announced its final send
                # watermark before closing; NAK any gap so the tail gets
                # retransmitted while the peer is still draining.
                self._peer_fin = seq
                if seq > self.recv_seq:
                    self._send_nak()
                continue
            # DATA
            if seq == self.recv_seq + 1:
                self.recv_seq = seq
                self._count("data_received")
                return payload
            if seq <= self.recv_seq:
                self._count("duplicates_dropped")
                continue
            # Sequence gap: the frames in between were dropped in transit.
            self._send_nak()

    def recv_frame_idle(
        self,
        should_stop,
        *,
        recover_ok=None,
        idle_nak_polls: int | None = None,
    ) -> bytes | None:
        """Deliver the next in-order frame on a link with no lockstep clock.

        Fabric receiver threads cannot read meaning into a socket timeout
        — an idle link between protocol steps is normal, not a crashed
        peer — so a timeout here just polls ``should_stop`` and keeps
        listening: no NAK, no counter bump, the clean-link ledger stays
        untouched.  On a fault-armed link, ``idle_nak_polls`` bounds that
        patience: after that many *consecutive* idle poll slices the
        receiver NAKs its next expected sequence number (and counts a
        timeout), so a tail-dropped frame — a loss no later frame's
        sequence gap will ever reveal — gets retransmitted instead of
        deadlocking the protocol.  Corruption and sequence gaps still NAK
        immediately, and NAK/RESUME/FIN control traffic is serviced in
        place.  Returns ``None`` when ``should_stop()`` turns true while
        idle.  A dropped connection recovers in place (bounded reconnect
        under the link's retry policy) when ``recover_ok`` allows it;
        otherwise — no recover predicate, recovery declined, or the
        reconnect budget spent — it surfaces as
        :class:`TransportDisconnected` for the caller to classify (clean
        peer exit vs. mid-protocol death).
        """
        idle_polls = 0
        while True:
            if should_stop():
                return None
            # Snapshot socket + generation under the lock: recovery holds
            # it for the whole reconnect, so a reader never starts a read
            # mid-swap and never consumes the replacement socket's RESUME
            # exchange; a read that outlives a swap fails on the closed
            # socket and the stale generation makes its recovery a no-op.
            with self._lock:
                gen = self.sock_gen
                sock = self.sock
            try:
                etype, seq, ack, payload = self._read_envelope(sock)
            except TransportTimeout:
                # Idle link: poll the stop flag, keep listening.
                idle_polls += 1
                if idle_nak_polls is not None and idle_polls >= idle_nak_polls:
                    idle_polls = 0
                    self._count("timeouts")
                    self._send_nak()
                continue
            except LinkCorruptionError:
                idle_polls = 0
                self._count("corrupt_dropped")
                self._send_nak()
                continue
            except TransportDisconnected as exc:
                idle_polls = 0
                if should_stop() or recover_ok is None or not recover_ok():
                    raise
                self._recover_connection(exc, gen=gen)
                continue
            idle_polls = 0
            self._note_ack(ack)
            if etype == ENV_NAK:
                self._count("naks_received")
                self._retransmit_from(seq)
                continue
            if etype == ENV_RESUME:
                self._replay_unacked()
                continue
            if etype == ENV_FIN:
                self._peer_fin = seq
                if seq > self.recv_seq:
                    self._send_nak()
                continue
            # DATA
            if seq == self.recv_seq + 1:
                self.recv_seq = seq
                self._count("data_received")
                return payload
            if seq <= self.recv_seq:
                self._count("duplicates_dropped")
                continue
            self._send_nak()

    def _read_envelope(self, sock=None) -> tuple[int, int, int, bytes]:
        # Readers that run concurrently with reconnects (the fabric's
        # receiver threads) pass an explicit socket snapshot, so a
        # recovery that swaps self.sock mid-read errors the stale reader
        # instead of letting it consume the new socket's RESUME exchange.
        sock = self.sock if sock is None else sock
        header = _recv_exact(sock, ENV_HEADER_SIZE)
        if header[:2] != ENV_MAGIC:
            raise FatalTransportError(
                f"link-layer desync: expected envelope magic {ENV_MAGIC!r}, "
                f"got {header[:2]!r} — the byte stream lost framing"
            )
        etype = header[2]
        if etype not in (ENV_DATA, ENV_NAK, ENV_RESUME, ENV_FIN):
            raise FatalTransportError(f"unknown link envelope type 0x{etype:02x}")
        seq, ack, length = struct.unpack(">QQI", header[3:ENV_HEADER_SIZE])
        rest = _recv_exact(sock, length + 4)
        payload, stored = rest[:length], struct.unpack(">I", rest[length:])[0]
        import zlib

        actual = zlib.crc32(header + payload) & 0xFFFFFFFF
        if stored != actual:
            raise LinkCorruptionError(
                f"link envelope seq {seq} failed its CRC32 check "
                f"(stored 0x{stored:08x}, computed 0x{actual:08x})"
            )
        return etype, seq, ack, payload

    def _send_nak(self) -> None:
        """Ask the peer to retransmit from the first frame we are missing."""
        self._count("naks_sent")
        self._send_env(encode_envelope(ENV_NAK, self.recv_seq + 1, self.recv_seq))

    def _retransmit_from(self, seq: int) -> None:
        with self._lock:
            if seq > self.send_seq:
                # The peer is ahead of us (it NAKed a frame we have not
                # produced yet — e.g. its read timed out while we were
                # still computing).  Nothing to replay; our next send
                # satisfies it.
                return
            missing = [s for s in self._resend if s >= seq]
            if not missing and seq > self.peer_ack:
                raise FatalTransportError(
                    f"peer requested retransmission from seq {seq} but the "
                    f"resend buffer no longer holds it (acked through "
                    f"{self.peer_ack}) — ack bookkeeping diverged"
                )
            for s in sorted(missing):
                self._count("retransmits")
                self._send_env(
                    encode_envelope(
                        ENV_DATA, s, self.recv_seq, self._resend[s]
                    ),
                    replayable=True,
                )

    # ------------------------------------------------------------- reconnect

    def _recover_connection(
        self, cause: BaseException, gen: int | None = None
    ) -> None:
        """Re-establish the socket, re-handshake, and replay unacked frames.

        The whole recovery sequence — dial/accept, protocol re-hello,
        RESUME watermark exchange — retries as a unit: a connection that
        dies *during* recovery (a raced redial, a stale backlog accept, a
        reset mid-hello) burns one more retry instead of surfacing
        half-recovered state to the caller.  The abandoned socket is
        closed first so a peer still reading it gets a prompt EOF and
        starts (or restarts) its own recovery.

        Recovery is single-flight: the link lock is held for the whole
        sequence (reentrantly safe under the send path, which already
        owns it), and a caller that saw the failure on socket generation
        ``gen`` returns immediately if another thread has already swapped
        in a newer socket — tearing down a freshly recovered connection
        because of a stale error would turn one fault into two.
        """
        if self.reconnect is None:
            raise TransportDisconnected(
                f"connection lost mid-run and no reconnector is configured "
                f"({cause})"
            ) from None
        with self._lock:
            if gen is not None and gen != self.sock_gen:
                return  # another thread already recovered this socket
            with _obs.span("link_recovery", cause=type(cause).__name__):
                self._count("reconnects")
                last_error: BaseException = cause
                for delay in self.retry.delays():
                    try:
                        try:
                            self.sock.close()
                        except OSError:
                            pass
                        self.sock = self.reconnect()
                        if self.on_reconnect is not None:
                            self.on_reconnect()
                        # RESUME exchange: announce our watermarks, learn the
                        # peer's, then replay everything it has not
                        # acknowledged.  The envelope goes out raw —
                        # _send_env's own recovery hook would recurse into
                        # this method.
                        env = encode_envelope(
                            ENV_RESUME, self.send_seq, self.recv_seq
                        )
                        self.sock.sendall(env)
                        self._count("envelope_bytes", ENV_OVERHEAD)
                        etype, seq, ack, _ = self._read_envelope()
                        if etype != ENV_RESUME:
                            raise FatalTransportError(
                                f"expected a RESUME envelope after reconnect, "
                                f"got type 0x{etype:02x} seq {seq}"
                            )
                        self._note_ack(ack)
                    except (OSError, RetryableTransportError) as exc:
                        last_error = exc
                        time.sleep(delay)
                        continue
                    self.sock_gen += 1
                    self._count("resumes")
                    self._replay_unacked()
                    return
                raise TransportDisconnected(
                    f"could not re-establish the connection within "
                    f"{self.retry.max_retries} attempts ({last_error})"
                ) from None

    def _replay_unacked(self) -> None:
        with self._lock:
            for s in sorted(self._resend):
                if s > self.peer_ack:
                    self._count("retransmits")
                    self._send_env(
                        encode_envelope(
                            ENV_DATA, s, self.recv_seq, self._resend[s]
                        ),
                        replayable=True,
                    )

    def close(self) -> None:
        """Close the link; with ``graceful_close``, drain first.

        The graceful path prevents the last-frame-lost race: an endpoint
        whose final DATA envelopes were dropped in transit must not
        vanish (taking its listener with it) while the peer is still
        NAKing for the tail.  FIN announces our final send watermark; we
        then keep servicing NAKs until the peer has announced (or
        implicitly confirmed, by EOF) that it is complete too.
        """
        if self.graceful_close:
            try:
                self._drain_close()
            except Exception:  # best-effort: close never masks the run
                pass
        try:
            self.sock.close()
        except OSError:  # pragma: no cover - best-effort close
            pass

    def _send_fin(self) -> None:
        with self._lock:
            # Raw send: _send_env's recovery hook has no place at close time.
            self.sock.sendall(
                encode_envelope(ENV_FIN, self.send_seq, self.recv_seq)
            )
            self._count("fins")
            self._count("envelope_bytes", ENV_OVERHEAD)

    def _drain_close(self) -> None:
        """FIN handshake: stay up until the peer is demonstrably done.

        Exit when the peer's FIN has been seen and covers everything we
        received (mirrored programs both finish, so both sides send FIN),
        or on EOF/reset (peer already closed — nothing left to protect),
        or when the retry budget of *consecutive unproductive reads* is
        spent (peer died silently).  Every serviced envelope resets that
        budget: a peer slowly NAKing its way to completeness keeps this
        endpoint alive as long as it keeps making progress.
        """
        self._send_fin()
        delays = self.retry.delays()
        while self._peer_fin is None or self._peer_fin > self.recv_seq:
            try:
                etype, seq, ack, _payload = self._read_envelope()
            except TransportTimeout:
                self._count("timeouts")
                try:
                    time.sleep(next(delays))
                except StopIteration:
                    return  # silent peer: give up, close anyway
                self._send_fin()  # re-announce (the first may predate peer reads)
                continue
            except (TransportDisconnected, OSError):
                return  # EOF/reset: the peer is already gone
            except LinkCorruptionError:
                self._count("corrupt_dropped")
                self._send_nak()
                continue
            delays = self.retry.delays()  # progress resets patience
            self._note_ack(ack)
            if etype == ENV_NAK:
                self._count("naks_received")
                self._retransmit_from(seq)
                self._send_fin()  # refreshed watermark + ack for the peer
            elif etype == ENV_FIN:
                self._peer_fin = seq
                if seq > self.recv_seq:
                    self._send_nak()
            elif etype == ENV_DATA:
                # Lockstep means no *new* in-order data can exist once the
                # program finished; anything here is a retransmit surplus.
                self._count("duplicates_dropped")


@dataclass
class _Expectation:
    """What the mirror predicts the next incoming frame must contain."""

    sender: str
    receiver: str
    tag: str
    kind: object
    seq: int
    nbytes: int


class NetworkChannel(CodecChannel):
    """A :class:`Channel` whose remote hop is a real TCP connection.

    ``local_parties`` declares which parties live in this process; the
    complement lives at the peer.  Transcript capture and byte accounting
    cover *all* messages (the full mirrored protocol), with ``nbytes``
    measured from encoded codec frames — link-envelope overhead is *not*
    charged to the protocol (it lives in ``link.stats``), so
    ``total_bytes`` agrees across endpoints and with the in-process
    serializing tier.
    """

    def __init__(
        self,
        sock: socket.socket,
        local_parties: set[str] | frozenset[str] | list[str],
        record_transcript: bool = True,
        retry: RetryPolicy | None = None,
        reconnect=None,
        graceful_close: bool = False,
    ):
        super().__init__(record_transcript)
        self.local_parties = frozenset(local_parties)
        if not self.local_parties:
            raise ValueError("a network endpoint must own at least one party")
        self.link = ReliableLink(
            sock, retry=retry, reconnect=reconnect, on_reconnect=self._rehello,
            graceful_close=graceful_close,
        )

    @property
    def sock(self) -> socket.socket:
        """The link's current socket (replaced transparently on reconnect)."""
        return self.link.sock

    # ------------------------------------------------------------- handshake

    def handshake(self) -> frozenset[str]:
        """Exchange hellos: version check + disjoint party ownership.

        Returns the peer's party set.  Public keys are *not* shipped here —
        both endpoints derive identical seeded keys when they build their
        federation contexts; the hello only pins protocol version and
        ownership so a mis-paired launch fails before any protocol byte.
        """
        return self._hello_exchange()

    def _hello_exchange(self) -> frozenset[str]:
        self.link.sock.sendall(codec.encode_hello(sorted(self.local_parties)))
        frame = read_frame(self.link.sock)
        peer_parties, _keys = codec.decode_hello(frame, key_ring=self.key_ring)
        overlap = self.local_parties & set(peer_parties)
        if overlap:
            raise FatalTransportError(
                f"both endpoints claim ownership of parties {sorted(overlap)}"
            )
        return frozenset(peer_parties)

    def _rehello(self) -> None:
        """Re-run the hello on a fresh socket (version + ownership re-pinned)."""
        self._hello_exchange()

    # ------------------------------------------------------------ send/recv

    def _dispatch_frame(self, msg: Message) -> Message:
        frame = codec.encode_message(msg)
        # One FIFO queue per receiver holds *either* delivered messages
        # (local hops and mirrored remote deliveries) or socket
        # expectations, so ordering between the two is preserved exactly.
        if msg.receiver in self.local_parties and msg.sender not in self.local_parties:
            # The authoritative bytes come from the peer's socket write;
            # predict what they must decode to (routing fields + frame
            # length — the peer's frame is bit-identical to our mirror's,
            # so no throwaway payload decode is needed here; recv() does
            # the one real decode when the frame arrives).
            msg.nbytes = len(frame)
            self._queues[msg.receiver].append(
                _Expectation(
                    sender=msg.sender,
                    receiver=msg.receiver,
                    tag=msg.tag,
                    kind=msg.kind,
                    seq=msg.seq,
                    nbytes=msg.nbytes,
                )
            )
            return msg
        decoded = codec.decode_message(frame, key_ring=self.key_ring)
        if msg.sender in self.local_parties and msg.receiver not in self.local_parties:
            # Remote receiver: this endpoint performs the real
            # transmission; the mirrored decoded copy continues the remote
            # party's simulation from exactly the bytes the peer receives.
            self.link.send_frame(frame)
        # Remote-to-remote mirrors and purely local hops (e.g. two
        # co-located A parties) deliver the decoded copy like the
        # serializing tier.
        self._queues[msg.receiver].append(decoded)
        return decoded

    def _transcode(self, msg: Message) -> Message:
        return self._dispatch_frame(msg)

    def _deliver(self, msg: Message) -> None:
        # Delivery happened in _dispatch_frame (queue or expectation).
        return None

    def recv(self, receiver: str, tag: str | None = None) -> object:
        queue = self._queues[receiver]
        if not queue:
            raise LookupError(f"no pending message for party {receiver!r}")
        entry = queue.popleft()
        if isinstance(entry, _Expectation):
            frame = self.link.recv_frame()
            msg = codec.decode_message(frame, key_ring=self.key_ring)
            observed = (
                msg.sender, msg.receiver, msg.tag, msg.kind, msg.seq, msg.nbytes,
            )
            predicted = (
                entry.sender, entry.receiver, entry.tag, entry.kind,
                entry.seq, entry.nbytes,
            )
            if observed != predicted:
                raise FatalTransportError(
                    f"wire frame diverged from the mirrored protocol: "
                    f"expected {predicted}, decoded {observed}"
                )
        else:
            msg = entry
        if tag is not None and msg.tag != tag:
            raise LookupError(
                f"protocol desync: party {receiver!r} expected tag {tag!r} "
                f"but next message is {msg.tag!r}"
            )
        return msg.payload

    def shutdown(self) -> None:
        """Verify the protocol drained cleanly, then close the socket.

        Both unread wire frames (expectations) and unconsumed mirrored
        deliveries count as an undrained protocol — either means this
        endpoint's recv sequence fell short of its send sequence.
        """
        leftovers = {
            party: len(q) for party, q in self._queues.items() if q
        }
        try:
            if leftovers:
                raise FatalTransportError(
                    f"protocol ended with undelivered messages pending for "
                    f"{leftovers}"
                )
        finally:
            self.link.close()


# ---------------------------------------------------------------------------
# Two-process party runner.


def _endpoint_main(
    role: str,
    listen: bool,
    local_parties: frozenset[str],
    program,
    args: tuple,
    port_queue,
    result_queue,
    timeout: float,
    record_transcript: bool,
    sock_timeout: float | None = None,
    retry: RetryPolicy | None = None,
    fault_plan=None,
) -> None:
    """Child-process entry: wire up the socket, run the program, report.

    Exactly one endpoint of the pair passes ``listen=True`` (it binds an
    ephemeral port and publishes it on ``port_queue``); the other dials.
    """
    sock = None
    listener = None
    per_read = sock_timeout if sock_timeout is not None else timeout
    try:
        if listen:
            listener = socket.create_server(("127.0.0.1", 0))
            listener.settimeout(timeout)
            port = listener.getsockname()[1]
            port_queue.put(port)
            sock, _ = listener.accept()
        else:
            port = port_queue.get(timeout=timeout)
            sock = socket.create_connection(("127.0.0.1", port), timeout=timeout)
        sock.settimeout(per_read)
        endpoint_sock = sock
        if fault_plan is not None:
            from repro.comm.faults import FaultySocket

            endpoint_sock = FaultySocket(sock, fault_plan)

        def _reconnect() -> socket.socket:
            # The listener endpoint keeps its server socket open for the
            # run's lifetime and re-accepts; the dialer redials the same
            # port.  The fault wrapper is rebound so the seeded plan keeps
            # counting frames across the new connection.
            if listen:
                fresh, _ = listener.accept()
            else:
                fresh = socket.create_connection(
                    ("127.0.0.1", port), timeout=timeout
                )
            fresh.settimeout(per_read)
            if fault_plan is not None:
                return endpoint_sock.rebind(fresh)
            return fresh

        channel = NetworkChannel(
            endpoint_sock,
            local_parties,
            record_transcript=record_transcript,
            retry=retry,
            reconnect=_reconnect,
            # Endpoints that exit take their listener/port with them: drain
            # the link (FIN + NAK service) so a peer chasing dropped tail
            # frames is never left redialing a dead port.
            graceful_close=True,
        )
        channel.handshake()
        result = program(channel, *args)
        channel.shutdown()
        # Snapshot *after* shutdown so the graceful-close FIN traffic is
        # included: this is the endpoint's final reliability ledger.
        result_queue.put((role, True, result, channel.link.stats.as_dict()))
    except BaseException:
        result_queue.put((role, False, traceback.format_exc(), None))
    finally:
        for s in (sock, listener):
            if s is not None:
                try:
                    s.close()
                except OSError:
                    pass


def _await_results(
    children: dict[str, object],
    result_queue,
    timeout: float,
    what: str = "run",
) -> tuple[dict[str, object], dict[str, object]]:
    """Collect every child's report under a hard deadline.

    Shared by the two-party and fabric drivers.  Returns
    ``(results, link_stats)`` keyed by role; raises
    :class:`FatalTransportError` on deadline expiry, on a child dying
    before reporting (with its exit code), or on any reported failure
    (with the child's traceback).  Children are always joined/terminated
    before returning.
    """
    results: dict[str, object] = {}
    link_stats: dict[str, object] = {}
    failures: dict[str, str] = {}
    # repro: nondeterministic-ok driver watchdog deadline — the parent
    # process's kill-switch clock, outside the protocol state
    deadline = time.monotonic() + timeout
    grace_deadline: float | None = None
    dead: dict[str, int | None] = {}
    try:
        while len(results) + len(failures) < len(children):
            # repro: nondeterministic-ok watchdog countdown (driver only)
            remaining = deadline - time.monotonic()
            if remaining <= 0.0:
                raise FatalTransportError(
                    f"{what} produced no result within {timeout}s — "
                    f"protocol deadlock; terminating all endpoints"
                )
            # Poll in short slices so child deaths are observed promptly.
            try:
                role, ok, payload, stats = result_queue.get(
                    timeout=min(0.25, remaining)
                )
            except queue_mod.Empty:
                pass
            else:
                if ok:
                    results[role] = payload
                    link_stats[role] = stats
                else:
                    failures[role] = payload
                continue
            # Liveness check: a child that exited without reporting is dead.
            # A short grace period lets an already-queued result drain (the
            # queue feeder can lag the exit notification).
            dead = {
                role: child.exitcode
                for role, child in children.items()
                if child.exitcode is not None
                and role not in results
                and role not in failures
            }
            if dead:
                if grace_deadline is None:
                    # repro: nondeterministic-ok child-death grace timer (driver only)
                    grace_deadline = time.monotonic() + 2.0
                # repro: nondeterministic-ok child-death grace timer (driver only)
                elif time.monotonic() > grace_deadline:
                    detail = ", ".join(
                        f"{role} (exit code {code})" for role, code in dead.items()
                    )
                    raise FatalTransportError(
                        f"endpoint died before reporting a result: {detail}"
                    )
    finally:
        for child in children.values():
            child.join(timeout=5.0)
            if child.is_alive():
                child.terminate()
                child.join(timeout=5.0)
    if failures:
        detail = "\n\n".join(
            f"--- {role} endpoint failed ---\n{tb}" for role, tb in failures.items()
        )
        raise FatalTransportError(f"{what} failed:\n{detail}")
    return results, link_stats


class TwoPartyResult(dict):
    """:func:`run_two_party`'s structured result, with legacy key access.

    The structured shape is ``{"results": {role: value}, "link_stats":
    {role: stats}}`` — role results no longer share a namespace with the
    ``"link_stats"`` key (a role literally named ``link_stats`` used to
    collide silently).  Indexing by a bare role name still works for the
    transition but warns: read ``result["results"][role]`` instead.
    """

    def __getitem__(self, key):
        try:
            return super().__getitem__(key)
        except KeyError:
            role_results = super().__getitem__("results")
            if isinstance(role_results, dict) and key in role_results:
                warnings.warn(
                    f"run_two_party(...)[{key!r}] uses the deprecated flat "
                    f"result shape; read [...]['results'][{key!r}] instead",
                    DeprecationWarning,
                    stacklevel=2,
                )
                return role_results[key]
            raise

    def __contains__(self, key) -> bool:
        if super().__contains__(key):
            return True
        role_results = super().__getitem__("results")
        return isinstance(role_results, dict) and key in role_results


def run_two_party(
    program,
    args: tuple = (),
    *,
    guest_parties: tuple[str, ...] = ("A",),
    host_parties: tuple[str, ...] = ("B",),
    timeout: float = 120.0,
    record_transcript: bool = True,
    start_method: str | None = None,
    sock_timeout: float | None = None,
    retry: RetryPolicy | None = None,
    fault_plans: dict | None = None,
) -> TwoPartyResult:
    """Run ``program`` as guest and host in separate OS processes.

    A thin wrapper over :func:`repro.comm.fabric.run_federation` in
    mirrored lockstep mode (the original two-party execution model:
    ``program(channel, *args)`` must be deterministic given its
    arguments, and both endpoints execute it in lockstep over a loopback
    TCP connection).  Returns a :class:`TwoPartyResult` —
    ``{"results": {"guest": ..., "host": ...}, "link_stats": {...}}`` —
    where ``link_stats`` maps each role to its endpoint's final
    :class:`LinkStats` dict (snapshotted after the graceful close), so
    chaos tests and benches read recovery counters from the return value.

    ``sock_timeout`` bounds each socket read (defaults to ``timeout``):
    chaos runs set it low so dropped frames are NAKed quickly while the
    overall deadline stays generous.  ``fault_plans`` maps a role
    (``"guest"``/``"host"``) to a seeded
    :class:`~repro.comm.faults.FaultPlan` applied to that endpoint's
    outbound DATA envelopes.  ``retry`` overrides the link's
    :class:`RetryPolicy`.

    A hard deadline of ``timeout`` seconds covers connection setup, every
    socket read, and the overall run, and child liveness is polled while
    waiting: an endpoint that dies before reporting (OOM, SIGKILL, crash)
    fails the run as soon as the death is observed — with its exit code —
    instead of burning the full deadline.
    """
    # Late import: fabric builds on this module's link layer.
    from repro.comm.fabric import run_federation

    out = run_federation(
        program,
        args,
        roles={"host": tuple(host_parties), "guest": tuple(guest_parties)},
        mirror=True,
        timeout=timeout,
        record_transcript=record_transcript,
        start_method=start_method,
        sock_timeout=sock_timeout,
        retry=retry,
        fault_plans=fault_plans,
    )
    return TwoPartyResult(out)
