"""Cross-process socket transport: parties in separate PIDs, bytes on a wire.

This is the third channel tier (see :mod:`repro.comm.channel`): a
:class:`NetworkChannel` carries protocol frames over a real TCP connection
between two OS processes, so the only thing that ever crosses the trust
boundary is what the wire codec can express as bytes.

Execution model — deterministic lockstep mirroring
--------------------------------------------------
The protocol layers are written as a single interleaved control flow that
performs *both* parties' steps (the in-process fidelity trick the seed repo
started from).  The socket tier keeps that code unchanged by running the
**same seeded program in both processes** and splitting *ownership*:

* each endpoint owns a subset of parties (``local_parties``);
* a ``send`` whose receiver is **remote** writes the encoded frame to the
  socket, and also delivers the locally *decoded* copy so the mirrored
  simulation of the remote party continues — from exactly the bytes the
  real remote receives;
* a ``send`` whose receiver is **local** transmits nothing (the peer's
  mirror performs the real transmission) and instead records what frame the
  wire must produce next;
* a ``recv`` for a **local** party blocks on the socket, decodes the
  incoming frame, and verifies it against that recorded expectation —
  sender, receiver, tag, kind, sequence number and frame length must all
  match, otherwise the endpoints desynchronised and we fail loudly.

Because every RNG in the federation is seeded (party RNGs, key generation,
blinding pools), the two mirrored processes draw identical randomness, so a
local party's state is *driven entirely by decoded wire bytes* while
remaining bit-identical to a single-process run — which is precisely the
protocol-conformance property the test-suite pins: byte-real transport with
zero protocol drift.

Deadlock safety: every socket read honours a hard ``timeout``, and the
:func:`run_two_party` driver enforces an overall deadline, terminating both
children — a wedged protocol fails fast instead of hanging the suite.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
import socket
import time
import traceback
from dataclasses import dataclass

from repro.comm import codec
from repro.comm.channel import CodecChannel
from repro.comm.message import Message

__all__ = ["NetworkChannel", "TransportError", "run_two_party"]


class TransportError(RuntimeError):
    """Socket-level failure: timeout, truncated frame, or peer desync."""


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    buf = bytearray()
    while len(buf) < n:
        try:
            chunk = sock.recv(n - len(buf))
        except socket.timeout:
            raise TransportError(
                "timed out waiting for a frame — protocol deadlock or a "
                "crashed peer"
            ) from None
        if not chunk:
            raise TransportError("peer closed the connection mid-frame")
        buf += chunk
    return bytes(buf)


def read_frame(sock: socket.socket) -> bytes:
    """Read one complete wire frame (preamble-validated) from a socket."""
    preamble = _recv_exact(sock, codec.PREAMBLE_SIZE)
    _, length = codec.parse_preamble(preamble)
    return preamble + _recv_exact(sock, length)


@dataclass
class _Expectation:
    """What the mirror predicts the next incoming frame must contain."""

    sender: str
    receiver: str
    tag: str
    kind: object
    seq: int
    nbytes: int


class NetworkChannel(CodecChannel):
    """A :class:`Channel` whose remote hop is a real TCP connection.

    ``local_parties`` declares which parties live in this process; the
    complement lives at the peer.  Transcript capture and byte accounting
    cover *all* messages (the full mirrored protocol), with ``nbytes``
    measured from encoded frames, so ``total_bytes`` agrees across
    endpoints and with the in-process serializing tier.
    """

    def __init__(
        self,
        sock: socket.socket,
        local_parties: set[str] | frozenset[str] | list[str],
        record_transcript: bool = True,
    ):
        super().__init__(record_transcript)
        self.sock = sock
        self.local_parties = frozenset(local_parties)
        if not self.local_parties:
            raise ValueError("a network endpoint must own at least one party")

    # ------------------------------------------------------------- handshake

    def handshake(self) -> frozenset[str]:
        """Exchange hellos: version check + disjoint party ownership.

        Returns the peer's party set.  Public keys are *not* shipped here —
        both endpoints derive identical seeded keys when they build their
        federation contexts; the hello only pins protocol version and
        ownership so a mis-paired launch fails before any protocol byte.
        """
        self.sock.sendall(codec.encode_hello(sorted(self.local_parties)))
        frame = read_frame(self.sock)
        peer_parties, keys = codec.decode_hello(frame, key_ring=self.key_ring)
        overlap = self.local_parties & set(peer_parties)
        if overlap:
            raise TransportError(
                f"both endpoints claim ownership of parties {sorted(overlap)}"
            )
        return frozenset(peer_parties)

    # ------------------------------------------------------------ send/recv

    def _dispatch_frame(self, msg: Message) -> Message:
        frame = codec.encode_message(msg)
        # One FIFO queue per receiver holds *either* delivered messages
        # (local hops and mirrored remote deliveries) or socket
        # expectations, so ordering between the two is preserved exactly.
        if msg.receiver in self.local_parties and msg.sender not in self.local_parties:
            # The authoritative bytes come from the peer's socket write;
            # predict what they must decode to (routing fields + frame
            # length — the peer's frame is bit-identical to our mirror's,
            # so no throwaway payload decode is needed here; recv() does
            # the one real decode when the frame arrives).
            msg.nbytes = len(frame)
            self._queues[msg.receiver].append(
                _Expectation(
                    sender=msg.sender,
                    receiver=msg.receiver,
                    tag=msg.tag,
                    kind=msg.kind,
                    seq=msg.seq,
                    nbytes=msg.nbytes,
                )
            )
            return msg
        decoded = codec.decode_message(frame, key_ring=self.key_ring)
        if msg.sender in self.local_parties and msg.receiver not in self.local_parties:
            # Remote receiver: this endpoint performs the real
            # transmission; the mirrored decoded copy continues the remote
            # party's simulation from exactly the bytes the peer receives.
            self.sock.sendall(frame)
        # Remote-to-remote mirrors and purely local hops (e.g. two
        # co-located A parties) deliver the decoded copy like the
        # serializing tier.
        self._queues[msg.receiver].append(decoded)
        return decoded

    def _transcode(self, msg: Message) -> Message:
        return self._dispatch_frame(msg)

    def _deliver(self, msg: Message) -> None:
        # Delivery happened in _dispatch_frame (queue or expectation).
        return None

    def recv(self, receiver: str, tag: str | None = None) -> object:
        queue = self._queues[receiver]
        if not queue:
            raise LookupError(f"no pending message for party {receiver!r}")
        entry = queue.popleft()
        if isinstance(entry, _Expectation):
            frame = read_frame(self.sock)
            msg = codec.decode_message(frame, key_ring=self.key_ring)
            observed = (
                msg.sender, msg.receiver, msg.tag, msg.kind, msg.seq, msg.nbytes,
            )
            predicted = (
                entry.sender, entry.receiver, entry.tag, entry.kind,
                entry.seq, entry.nbytes,
            )
            if observed != predicted:
                raise TransportError(
                    f"wire frame diverged from the mirrored protocol: "
                    f"expected {predicted}, decoded {observed}"
                )
        else:
            msg = entry
        if tag is not None and msg.tag != tag:
            raise LookupError(
                f"protocol desync: party {receiver!r} expected tag {tag!r} "
                f"but next message is {msg.tag!r}"
            )
        return msg.payload

    def shutdown(self) -> None:
        """Verify the protocol drained cleanly, then close the socket.

        Both unread wire frames (expectations) and unconsumed mirrored
        deliveries count as an undrained protocol — either means this
        endpoint's recv sequence fell short of its send sequence.
        """
        leftovers = {
            party: len(q) for party, q in self._queues.items() if q
        }
        try:
            if leftovers:
                raise TransportError(
                    f"protocol ended with undelivered messages pending for "
                    f"{leftovers}"
                )
        finally:
            try:
                self.sock.close()
            except OSError:  # pragma: no cover - best-effort close
                pass


# ---------------------------------------------------------------------------
# Two-process party runner.


def _endpoint_main(
    role: str,
    local_parties: frozenset[str],
    program,
    args: tuple,
    port_queue,
    result_queue,
    timeout: float,
    record_transcript: bool,
) -> None:
    """Child-process entry: wire up the socket, run the program, report."""
    sock = None
    listener = None
    try:
        if role == "host":
            listener = socket.create_server(("127.0.0.1", 0))
            listener.settimeout(timeout)
            port_queue.put(listener.getsockname()[1])
            sock, _ = listener.accept()
        else:
            port = port_queue.get(timeout=timeout)
            sock = socket.create_connection(("127.0.0.1", port), timeout=timeout)
        sock.settimeout(timeout)
        channel = NetworkChannel(
            sock, local_parties, record_transcript=record_transcript
        )
        channel.handshake()
        result = program(channel, *args)
        channel.shutdown()
        result_queue.put((role, True, result))
    except BaseException:
        result_queue.put((role, False, traceback.format_exc()))
    finally:
        for s in (sock, listener):
            if s is not None:
                try:
                    s.close()
                except OSError:
                    pass


def run_two_party(
    program,
    args: tuple = (),
    *,
    guest_parties: tuple[str, ...] = ("A",),
    host_parties: tuple[str, ...] = ("B",),
    timeout: float = 120.0,
    record_transcript: bool = True,
    start_method: str | None = None,
) -> dict[str, object]:
    """Run ``program`` as guest and host in separate OS processes.

    ``program(channel, *args)`` must be deterministic given its arguments
    (build the federation from seeds, train, return a picklable digest);
    both endpoints execute it in lockstep over a loopback TCP connection.
    Returns ``{"guest": result, "host": result}``.

    A hard deadline of ``timeout`` seconds covers connection setup, every
    socket read, and the overall run: a deadlocked or crashed protocol
    terminates both children and raises :class:`TransportError` instead of
    hanging the caller.
    """
    if start_method is None:
        start_method = (
            "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        )
    mp = multiprocessing.get_context(start_method)
    port_queue = mp.Queue()
    result_queue = mp.Queue()
    children = {
        role: mp.Process(
            target=_endpoint_main,
            args=(
                role,
                frozenset(parties),
                program,
                tuple(args),
                port_queue,
                result_queue,
                timeout,
                record_transcript,
            ),
            daemon=True,
            name=f"blindfl-{role}",
        )
        for role, parties in (("host", host_parties), ("guest", guest_parties))
    }
    for child in children.values():
        child.start()
    results: dict[str, object] = {}
    failures: dict[str, str] = {}
    deadline = time.monotonic() + timeout
    try:
        for _ in range(len(children)):
            try:
                remaining = max(0.0, deadline - time.monotonic())
                role, ok, payload = result_queue.get(timeout=remaining)
            except queue_mod.Empty:
                raise TransportError(
                    f"two-party run produced no result within {timeout}s — "
                    f"protocol deadlock; terminating both endpoints"
                ) from None
            if ok:
                results[role] = payload
            else:
                failures[role] = payload
    finally:
        for child in children.values():
            child.join(timeout=5.0)
            if child.is_alive():
                child.terminate()
                child.join(timeout=5.0)
    if failures:
        detail = "\n\n".join(
            f"--- {role} endpoint failed ---\n{tb}" for role, tb in failures.items()
        )
        raise TransportError(f"two-party run failed:\n{detail}")
    return results
